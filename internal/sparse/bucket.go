package sparse

import (
	"repro/internal/semiring"
	"repro/internal/workpool"
)

// BucketSPA is the sort-free bucketed sparse accumulator: the output index
// space [0, n) is split into contiguous bucket ranges, every worker appends
// (index, value) entries to a private run per bucket — no atomics, no shared
// cursor — and Merge then resolves each bucket independently before emitting
// its range in ascending index order. Because the bucket ranges themselves
// ascend, concatenating the per-bucket emissions yields a globally sorted,
// duplicate-free result without any sorting step. This is the CombBLAS-style
// remedy for the sort bottleneck the paper's Fig 7 identifies in the
// SPA → Sort → Output pipeline.
//
// Determinism: Merge visits the runs of a bucket in worker order and each
// worker appends in its input order, so first-wins claiming (op == nil)
// resolves to the globally first append when workers partition the input into
// contiguous ascending chunks — the result is independent of both the worker
// count and the bucket count.
//
// A BucketSPA is reusable: MergeInto leaves the dense scratch clean and the
// runs truncated (capacity retained), so scatter → merge → scatter cycles on
// one instance are allocation-free in steady state. ScratchPool pools
// instances across kernel calls.
type BucketSPA[T semiring.Number] struct {
	N       int // output index domain [0, N)
	Workers int // run owners (first Append dimension)
	Buckets int // contiguous index ranges (second Append dimension)

	bounds  []int // bucket b owns [bounds[b], bounds[b+1])
	runs    [][]bucketEntry[T]
	val     []T
	isThere []bool

	counts  []int // per-bucket claim counts, reused across merges
	offsets []int // prefix sums of counts, reused across merges
}

type bucketEntry[T semiring.Number] struct {
	ind int
	val T
}

// BucketMergeStats records the work one Merge performed, for cost accounting.
type BucketMergeStats struct {
	Entries int64 // run entries resolved across all buckets
	Claimed int   // distinct output positions (= result nnz)
	Scanned int64 // positions scanned during ordered emission (= N)
}

// NewBucketSPA returns a bucketed SPA over index domain [0, n) with the given
// worker and bucket counts (both clamped to at least 1; buckets is capped at
// n so no bucket range is empty by construction).
func NewBucketSPA[T semiring.Number](n, workers, buckets int) *BucketSPA[T] {
	s := &BucketSPA[T]{}
	s.Reconfigure(n, workers, buckets)
	return s
}

// Reconfigure resizes a clean BucketSPA (empty runs, all-false isThere — the
// state MergeInto leaves behind) for a new (n, workers, buckets) shape,
// reusing every backing array whose capacity suffices.
func (s *BucketSPA[T]) Reconfigure(n, workers, buckets int) {
	if workers < 1 {
		workers = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	if buckets > n && n > 0 {
		buckets = n
	}
	s.N, s.Workers, s.Buckets = n, workers, buckets
	s.bounds = growInts(s.bounds, buckets+1)
	for b := 0; b <= buckets; b++ {
		s.bounds[b] = b * n / buckets
	}
	nr := workers * buckets
	if cap(s.runs) < nr {
		runs := make([][]bucketEntry[T], nr)
		copy(runs, s.runs[:cap(s.runs)])
		s.runs = runs
	} else {
		s.runs = s.runs[:nr]
	}
	for i := range s.runs {
		s.runs[i] = s.runs[i][:0]
	}
	if cap(s.val) < n {
		s.val = make([]T, n)
		s.isThere = make([]bool, n)
	} else {
		s.val = s.val[:n]
		s.isThere = s.isThere[:n]
	}
	s.counts = growInts(s.counts, buckets)
	s.offsets = growInts(s.offsets, buckets+1)
}

// growInts reslices xs to length n, reallocating only when capacity is short.
func growInts(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n)
	}
	return xs[:n]
}

// BucketOf returns the bucket owning index i.
func (s *BucketSPA[T]) BucketOf(i int) int {
	b := i * s.Buckets / s.N
	// The floor-division guess can be off by one around the range edges.
	for b+1 < len(s.bounds) && i >= s.bounds[b+1] {
		b++
	}
	for b > 0 && i < s.bounds[b] {
		b--
	}
	return b
}

// Append records (i, v) on worker w's private run for the bucket owning i.
// Concurrent calls are safe as long as each worker id has one caller.
func (s *BucketSPA[T]) Append(w, i int, v T) {
	r := w*s.Buckets + s.BucketOf(i)
	s.runs[r] = append(s.runs[r], bucketEntry[T]{i, v})
}

// Merge resolves every bucket and emits the result into fresh slices; see
// MergeInto for the reusable-buffer form and the resolution rules.
func (s *BucketSPA[T]) Merge(op semiring.BinaryOp[T], parallel int) (ind []int, val []T, st BucketMergeStats) {
	return s.MergeInto(op, nil, parallel, nil, nil)
}

// MergeInto resolves every bucket and emits the result, appending into ind
// and val (pass buffers with retained capacity for an allocation-free merge,
// or nil for fresh slices). With op == nil the first appended entry of each
// position wins (worker order, then append order); otherwise duplicates are
// accumulated with op in that same order. Buckets touch disjoint ranges of
// the dense scratch arrays, so they are processed with up to `parallel`
// concurrent executors on wp (nil wp uses the shared pool) without
// synchronization. The returned index slice is sorted and duplicate-free;
// val is aligned with it.
//
// MergeInto cleans up after itself: the emission pass clears every claimed
// isThere flag and the runs are truncated (capacity kept), so the BucketSPA
// is immediately reusable — the property ScratchPool relies on.
func (s *BucketSPA[T]) MergeInto(op semiring.BinaryOp[T], wp *workpool.Pool, parallel int, ind []int, val []T) ([]int, []T, BucketMergeStats) {
	var st BucketMergeStats
	if parallel <= 1 || s.Buckets == 1 {
		for b := 0; b < s.Buckets; b++ {
			s.counts[b] = s.mergeBucket(b, op)
		}
	} else {
		wp.ParFor(parallel, s.Buckets, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				s.counts[b] = s.mergeBucket(b, op)
			}
		})
	}
	for _, r := range s.runs {
		st.Entries += int64(len(r))
	}
	s.offsets[0] = 0
	for b := 0; b < s.Buckets; b++ {
		s.offsets[b+1] = s.offsets[b] + s.counts[b]
	}
	total := s.offsets[s.Buckets]
	base := len(ind)
	ind = growAppend(ind, total)
	val = growAppendT(val, total)
	out, outV := ind[base:], val[base:]
	if parallel <= 1 || s.Buckets == 1 {
		for b := 0; b < s.Buckets; b++ {
			s.emitBucket(b, out, outV)
		}
	} else {
		wp.ParFor(parallel, s.Buckets, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				s.emitBucket(b, out, outV)
			}
		})
	}
	for i := range s.runs {
		s.runs[i] = s.runs[i][:0]
	}
	st.Claimed = total
	st.Scanned = int64(s.N)
	return ind, val, st
}

// mergeBucket resolves bucket b's runs into the dense scratch and returns the
// number of distinct positions claimed.
func (s *BucketSPA[T]) mergeBucket(b int, op semiring.BinaryOp[T]) int {
	cnt := 0
	for w := 0; w < s.Workers; w++ {
		for _, e := range s.runs[w*s.Buckets+b] {
			if !s.isThere[e.ind] {
				s.isThere[e.ind] = true
				s.val[e.ind] = e.val
				cnt++
			} else if op != nil {
				s.val[e.ind] = op(s.val[e.ind], e.val)
			}
		}
	}
	return cnt
}

// emitBucket scans bucket b's range in ascending order, writing its claimed
// positions at their offsets in ind/val and clearing the claim flags.
func (s *BucketSPA[T]) emitBucket(b int, ind []int, val []T) {
	k := s.offsets[b]
	for i := s.bounds[b]; i < s.bounds[b+1]; i++ {
		if s.isThere[i] {
			s.isThere[i] = false
			ind[k] = i
			val[k] = s.val[i]
			k++
		}
	}
}

// growAppend extends xs by n elements (values unspecified), reallocating only
// when capacity is short.
func growAppend(xs []int, n int) []int {
	if cap(xs)-len(xs) >= n {
		return xs[:len(xs)+n]
	}
	out := make([]int, len(xs)+n)
	copy(out, xs)
	return out
}

// growAppendT is growAppend for the value slice.
func growAppendT[T semiring.Number](xs []T, n int) []T {
	if cap(xs)-len(xs) >= n {
		return xs[:len(xs)+n]
	}
	out := make([]T, len(xs)+n)
	copy(out, xs)
	return out
}
