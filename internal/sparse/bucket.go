package sparse

import (
	"repro/internal/semiring"
)

// BucketSPA is the sort-free bucketed sparse accumulator: the output index
// space [0, n) is split into contiguous bucket ranges, every worker appends
// (index, value) entries to a private run per bucket — no atomics, no shared
// cursor — and Merge then resolves each bucket independently before emitting
// its range in ascending index order. Because the bucket ranges themselves
// ascend, concatenating the per-bucket emissions yields a globally sorted,
// duplicate-free result without any sorting step. This is the CombBLAS-style
// remedy for the sort bottleneck the paper's Fig 7 identifies in the
// SPA → Sort → Output pipeline.
//
// Determinism: Merge visits the runs of a bucket in worker order and each
// worker appends in its input order, so first-wins claiming (op == nil)
// resolves to the globally first append when workers partition the input into
// contiguous ascending chunks — the result is independent of both the worker
// count and the bucket count.
type BucketSPA[T semiring.Number] struct {
	N       int // output index domain [0, N)
	Workers int // run owners (first Append dimension)
	Buckets int // contiguous index ranges (second Append dimension)

	bounds  []int // bucket b owns [bounds[b], bounds[b+1])
	runs    [][]bucketEntry[T]
	val     []T
	isThere []bool
}

type bucketEntry[T semiring.Number] struct {
	ind int
	val T
}

// BucketMergeStats records the work one Merge performed, for cost accounting.
type BucketMergeStats struct {
	Entries int64 // run entries resolved across all buckets
	Claimed int   // distinct output positions (= result nnz)
	Scanned int64 // positions scanned during ordered emission (= N)
}

// NewBucketSPA returns a bucketed SPA over index domain [0, n) with the given
// worker and bucket counts (both clamped to at least 1; buckets is capped at
// n so no bucket range is empty by construction).
func NewBucketSPA[T semiring.Number](n, workers, buckets int) *BucketSPA[T] {
	if workers < 1 {
		workers = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	if buckets > n && n > 0 {
		buckets = n
	}
	bounds := make([]int, buckets+1)
	for b := 1; b <= buckets; b++ {
		bounds[b] = b * n / buckets
	}
	return &BucketSPA[T]{
		N:       n,
		Workers: workers,
		Buckets: buckets,
		bounds:  bounds,
		runs:    make([][]bucketEntry[T], workers*buckets),
		val:     make([]T, n),
		isThere: make([]bool, n),
	}
}

// BucketOf returns the bucket owning index i.
func (s *BucketSPA[T]) BucketOf(i int) int {
	b := i * s.Buckets / s.N
	// The floor-division guess can be off by one around the range edges.
	for b+1 < len(s.bounds) && i >= s.bounds[b+1] {
		b++
	}
	for b > 0 && i < s.bounds[b] {
		b--
	}
	return b
}

// Append records (i, v) on worker w's private run for the bucket owning i.
// Concurrent calls are safe as long as each worker id has one caller.
func (s *BucketSPA[T]) Append(w, i int, v T) {
	r := w*s.Buckets + s.BucketOf(i)
	s.runs[r] = append(s.runs[r], bucketEntry[T]{i, v})
}

// Merge resolves every bucket and emits the result. With op == nil the first
// appended entry of each position wins (worker order, then append order);
// otherwise duplicates are accumulated with op in that same order. Buckets
// touch disjoint ranges of the dense scratch arrays, so they are processed in
// parallel with up to `parallel` goroutines without synchronization. The
// returned index slice is sorted and duplicate-free; val is aligned with it.
func (s *BucketSPA[T]) Merge(op semiring.BinaryOp[T], parallel int) (ind []int, val []T, st BucketMergeStats) {
	counts := make([]int, s.Buckets)
	parForIdx(parallel, s.Buckets, func(b int) {
		cnt := 0
		for w := 0; w < s.Workers; w++ {
			for _, e := range s.runs[w*s.Buckets+b] {
				if !s.isThere[e.ind] {
					s.isThere[e.ind] = true
					s.val[e.ind] = e.val
					cnt++
				} else if op != nil {
					s.val[e.ind] = op(s.val[e.ind], e.val)
				}
			}
		}
		counts[b] = cnt
	})
	for _, r := range s.runs {
		st.Entries += int64(len(r))
	}
	offsets := make([]int, s.Buckets+1)
	for b := 0; b < s.Buckets; b++ {
		offsets[b+1] = offsets[b] + counts[b]
	}
	total := offsets[s.Buckets]
	ind = make([]int, total)
	val = make([]T, total)
	parForIdx(parallel, s.Buckets, func(b int) {
		k := offsets[b]
		for i := s.bounds[b]; i < s.bounds[b+1]; i++ {
			if s.isThere[i] {
				ind[k] = i
				val[k] = s.val[i]
				k++
			}
		}
	})
	st.Claimed = total
	st.Scanned = int64(s.N)
	return ind, val, st
}

// parForIdx runs body(i) for every i in [0, n) using up to workers
// goroutines (strided assignment; workers <= 1 runs inline).
func parForIdx(workers, n int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				body(i)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
