package sparse

import (
	"math/rand"
	"testing"
)

// bucketReference resolves the same append stream with the sequential SPA and
// a merge sort — the ground truth the bucket SPA must reproduce bitwise.
func bucketReference(n int, inds []int, vals []int64, firstWins bool) ([]int, []int64) {
	spa := NewSPA[int64](n)
	for k, i := range inds {
		if firstWins {
			spa.ScatterFirst(i, vals[k])
		} else {
			spa.Scatter(i, vals[k], func(a, b int64) int64 { return a + b })
		}
	}
	out := spa.Gather(func(xs []int) { MergeSortInts(xs, 1) })
	return out.Ind, out.Val
}

// appendChunked feeds the entry stream into the bucket SPA the way the
// SpMSpV engine does: contiguous ascending chunks, one per worker.
func appendChunked(s *BucketSPA[int64], inds []int, vals []int64) {
	n := len(inds)
	for w := 0; w < s.Workers; w++ {
		lo, hi := w*n/s.Workers, (w+1)*n/s.Workers
		for k := lo; k < hi; k++ {
			s.Append(w, inds[k], vals[k])
		}
	}
}

func TestBucketSPAFirstWins(t *testing.T) {
	s := NewBucketSPA[int64](10, 1, 3)
	for _, e := range []struct {
		i int
		v int64
	}{{7, 70}, {2, 20}, {7, 71}, {0, 1}, {2, 22}} {
		s.Append(0, e.i, e.v)
	}
	ind, val, st := s.Merge(nil, 1)
	wantInd := []int{0, 2, 7}
	wantVal := []int64{1, 20, 70}
	if len(ind) != 3 {
		t.Fatalf("got %d entries, want 3", len(ind))
	}
	for k := range wantInd {
		if ind[k] != wantInd[k] || val[k] != wantVal[k] {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", k, ind[k], val[k], wantInd[k], wantVal[k])
		}
	}
	if st.Entries != 5 || st.Claimed != 3 || st.Scanned != 10 {
		t.Errorf("stats %+v, want Entries=5 Claimed=3 Scanned=10", st)
	}
}

func TestBucketSPAMonoidAccumulate(t *testing.T) {
	s := NewBucketSPA[int64](8, 2, 4)
	s.Append(0, 3, 5)
	s.Append(0, 6, 1)
	s.Append(1, 3, 7)
	s.Append(1, 3, 2)
	ind, val, _ := s.Merge(func(a, b int64) int64 { return a + b }, 2)
	if len(ind) != 2 || ind[0] != 3 || ind[1] != 6 {
		t.Fatalf("indices %v, want [3 6]", ind)
	}
	if val[0] != 14 || val[1] != 1 {
		t.Fatalf("values %v, want [14 1]", val)
	}
}

// The result must not depend on the bucket count, the worker count, or the
// merge parallelism — only on the append order.
func TestBucketSPAShapeInvariance(t *testing.T) {
	const n = 1000
	r := rand.New(rand.NewSource(7))
	inds := make([]int, 5000)
	vals := make([]int64, len(inds))
	for k := range inds {
		inds[k] = r.Intn(n)
		vals[k] = int64(k)
	}
	wantInd, wantVal := bucketReference(n, inds, vals, true)
	for _, workers := range []int{1, 2, 3, 8} {
		for _, buckets := range []int{1, 2, 7, 16, 100, n, 3 * n} {
			s := NewBucketSPA[int64](n, workers, buckets)
			appendChunked(s, inds, vals)
			ind, val, st := s.Merge(nil, workers)
			if len(ind) != len(wantInd) {
				t.Fatalf("w=%d b=%d: nnz %d, want %d", workers, buckets, len(ind), len(wantInd))
			}
			for k := range ind {
				if ind[k] != wantInd[k] || val[k] != wantVal[k] {
					t.Fatalf("w=%d b=%d: entry %d = (%d,%d), want (%d,%d)",
						workers, buckets, k, ind[k], val[k], wantInd[k], wantVal[k])
				}
			}
			if st.Entries != int64(len(inds)) {
				t.Fatalf("w=%d b=%d: merged %d entries, want %d", workers, buckets, st.Entries, len(inds))
			}
		}
	}
}

func TestBucketSPAEmpty(t *testing.T) {
	s := NewBucketSPA[int64](0, 0, 0)
	ind, val, st := s.Merge(nil, 4)
	if len(ind) != 0 || len(val) != 0 || st.Claimed != 0 {
		t.Fatalf("empty SPA produced %v/%v/%+v", ind, val, st)
	}
	s2 := NewBucketSPA[int64](5, 2, 8) // buckets capped at n
	if s2.Buckets != 5 {
		t.Fatalf("buckets = %d, want capped to 5", s2.Buckets)
	}
	for i := 0; i < 5; i++ {
		if b := s2.BucketOf(i); b < 0 || b >= s2.Buckets || i < s2.bounds[b] || i >= s2.bounds[b+1] {
			t.Fatalf("BucketOf(%d) = %d outside its range", i, b)
		}
	}
}
