package sparse

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// COO is a coordinate-format triplet builder. It accumulates (row, col, val)
// entries in any order and converts to CSR, combining duplicates with a
// caller-supplied binary operator (a "dup" monoid in GraphBLAS terms).
type COO[T semiring.Number] struct {
	NRows, NCols int
	Rows, Cols   []int
	Vals         []T
}

// NewCOO returns an empty nrows×ncols triplet builder.
func NewCOO[T semiring.Number](nrows, ncols int) *COO[T] {
	return &COO[T]{NRows: nrows, NCols: ncols}
}

// Append adds one triplet. Bounds are checked at ToCSR time.
func (c *COO[T]) Append(i, j int, v T) {
	c.Rows = append(c.Rows, i)
	c.Cols = append(c.Cols, j)
	c.Vals = append(c.Vals, v)
}

// Len returns the number of accumulated triplets (including duplicates).
func (c *COO[T]) Len() int { return len(c.Rows) }

// ToCSR converts to CSR, sorting by (row, col) and combining duplicate
// coordinates with dup (for example semiring.Plus to sum them, or
// semiring.Second to keep the last inserted).
func (c *COO[T]) ToCSR(dup semiring.BinaryOp[T]) (*CSR[T], error) {
	for k := range c.Rows {
		if c.Rows[k] < 0 || c.Rows[k] >= c.NRows {
			return nil, fmt.Errorf("sparse: coo: row %d out of range [0,%d)", c.Rows[k], c.NRows)
		}
		if c.Cols[k] < 0 || c.Cols[k] >= c.NCols {
			return nil, fmt.Errorf("sparse: coo: col %d out of range [0,%d)", c.Cols[k], c.NCols)
		}
	}
	perm := make([]int, len(c.Rows))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if c.Rows[pa] != c.Rows[pb] {
			return c.Rows[pa] < c.Rows[pb]
		}
		return c.Cols[pa] < c.Cols[pb]
	})

	a := NewCSR[T](c.NRows, c.NCols)
	a.ColIdx = make([]int, 0, len(c.Rows))
	a.Val = make([]T, 0, len(c.Rows))
	counts := make([]int, c.NRows)
	prevRow, prevCol := -1, -1
	for _, p := range perm {
		i, j, v := c.Rows[p], c.Cols[p], c.Vals[p]
		if i == prevRow && j == prevCol {
			last := len(a.Val) - 1
			a.Val[last] = dup(a.Val[last], v)
			continue
		}
		a.ColIdx = append(a.ColIdx, j)
		a.Val = append(a.Val, v)
		counts[i]++
		prevRow, prevCol = i, j
	}
	for i := 0; i < c.NRows; i++ {
		a.RowPtr[i+1] = a.RowPtr[i] + counts[i]
	}
	return a, nil
}

// CSRFromTriplets is a convenience wrapper building a CSR matrix directly
// from parallel slices, summing duplicates.
func CSRFromTriplets[T semiring.Number](nrows, ncols int, rows, cols []int, vals []T) (*CSR[T], error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("sparse: triplets: mismatched lengths %d/%d/%d",
			len(rows), len(cols), len(vals))
	}
	c := &COO[T]{NRows: nrows, NCols: ncols, Rows: rows, Cols: cols, Vals: vals}
	return c.ToCSR(semiring.Plus[T])
}

// ToCOO converts a CSR matrix back to triplets in row-major order.
func (a *CSR[T]) ToCOO() *COO[T] {
	c := NewCOO[T](a.NRows, a.NCols)
	c.Rows = make([]int, 0, a.NNZ())
	c.Cols = append([]int(nil), a.ColIdx...)
	c.Vals = append([]T(nil), a.Val...)
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Rows = append(c.Rows, i)
		}
	}
	return c
}
