package sparse

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// CSC is a Compressed Sparse Columns matrix — the column-major twin of CSR.
// The paper's library uses CSR exclusively (it is what Chapel supports), but
// column-major access is the natural layout for pull-style traversals
// (direction-optimizing BFS) and for the column-wise SpMSpV formulations of
// the literature the paper cites, so the library provides it as an extension
// with O(nnz) conversions both ways.
type CSC[T semiring.Number] struct {
	NRows  int
	NCols  int
	ColPtr []int
	RowIdx []int
	Val    []T
}

// NewCSC returns an empty NRows×NCols matrix.
func NewCSC[T semiring.Number](nrows, ncols int) *CSC[T] {
	return &CSC[T]{NRows: nrows, NCols: ncols, ColPtr: make([]int, ncols+1)}
}

// NNZ returns the number of stored elements.
func (a *CSC[T]) NNZ() int { return len(a.RowIdx) }

// Col returns the row-id and value slices of column j (aliases, not copies).
func (a *CSC[T]) Col(j int) (rows []int, vals []T) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowIdx[lo:hi], a.Val[lo:hi]
}

// ColNNZ returns the number of stored elements in column j.
func (a *CSC[T]) ColNNZ(j int) int { return a.ColPtr[j+1] - a.ColPtr[j] }

// Get returns the value at (i, j) by binary search within the column.
func (a *CSC[T]) Get(i, j int) (T, bool) {
	rows, vals := a.Col(j)
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return vals[k], true
	}
	var zero T
	return zero, false
}

// Validate checks the CSC representation invariants.
func (a *CSC[T]) Validate() error {
	if len(a.ColPtr) != a.NCols+1 {
		return fmt.Errorf("sparse: csc: len(ColPtr)=%d, want %d", len(a.ColPtr), a.NCols+1)
	}
	if len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("sparse: csc: %d row ids but %d values", len(a.RowIdx), len(a.Val))
	}
	if a.ColPtr[0] != 0 || a.ColPtr[a.NCols] != len(a.RowIdx) {
		return fmt.Errorf("sparse: csc: ColPtr endpoints wrong")
	}
	for j := 0; j < a.NCols; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: csc: ColPtr not monotone at column %d", j)
		}
		rows, _ := a.Col(j)
		for k, i := range rows {
			if i < 0 || i >= a.NRows {
				return fmt.Errorf("sparse: csc: column %d: row %d out of range", j, i)
			}
			if k > 0 && rows[k-1] >= i {
				return fmt.Errorf("sparse: csc: column %d: rows not strictly increasing", j)
			}
		}
	}
	return nil
}

// ToCSC converts a CSR matrix to CSC in O(nnz) with a counting pass.
func (a *CSR[T]) ToCSC() *CSC[T] {
	c := NewCSC[T](a.NRows, a.NCols)
	c.RowIdx = make([]int, a.NNZ())
	c.Val = make([]T, a.NNZ())
	for _, j := range a.ColIdx {
		c.ColPtr[j+1]++
	}
	for j := 0; j < c.NCols; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	next := append([]int(nil), c.ColPtr[:c.NCols]...)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			p := next[j]
			next[j]++
			c.RowIdx[p] = i
			c.Val[p] = vals[k]
		}
	}
	return c
}

// ToCSR converts a CSC matrix back to CSR in O(nnz).
func (a *CSC[T]) ToCSR() *CSR[T] {
	r := NewCSR[T](a.NRows, a.NCols)
	r.ColIdx = make([]int, a.NNZ())
	r.Val = make([]T, a.NNZ())
	for _, i := range a.RowIdx {
		r.RowPtr[i+1]++
	}
	for i := 0; i < r.NRows; i++ {
		r.RowPtr[i+1] += r.RowPtr[i]
	}
	next := append([]int(nil), r.RowPtr[:r.NRows]...)
	for j := 0; j < a.NCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			p := next[i]
			next[i]++
			r.ColIdx[p] = j
			r.Val[p] = vals[k]
		}
	}
	return r
}

// Identity returns the n×n identity matrix in CSR form.
func Identity[T semiring.Number](n int) *CSR[T] {
	a := NewCSR[T](n, n)
	a.ColIdx = make([]int, n)
	a.Val = make([]T, n)
	for i := 0; i < n; i++ {
		a.ColIdx[i] = i
		a.Val[i] = 1
		a.RowPtr[i+1] = i + 1
	}
	return a
}

// Diag returns the diagonal matrix with the given diagonal values (zeros are
// stored as explicit entries, matching GraphBLAS semantics where storage is
// pattern-driven).
func Diag[T semiring.Number](d []T) *CSR[T] {
	n := len(d)
	a := NewCSR[T](n, n)
	a.ColIdx = make([]int, n)
	a.Val = append([]T(nil), d...)
	for i := 0; i < n; i++ {
		a.ColIdx[i] = i
		a.RowPtr[i+1] = i + 1
	}
	return a
}

// PermuteRows returns the matrix whose row i is a's row perm[i]. perm must be
// a permutation of [0, NRows).
func (a *CSR[T]) PermuteRows(perm []int) (*CSR[T], error) {
	if len(perm) != a.NRows {
		return nil, fmt.Errorf("sparse: PermuteRows: perm has %d entries for %d rows", len(perm), a.NRows)
	}
	seen := make([]bool, a.NRows)
	for _, p := range perm {
		if p < 0 || p >= a.NRows || seen[p] {
			return nil, fmt.Errorf("sparse: PermuteRows: not a permutation")
		}
		seen[p] = true
	}
	out := NewCSR[T](a.NRows, a.NCols)
	out.ColIdx = make([]int, 0, a.NNZ())
	out.Val = make([]T, 0, a.NNZ())
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(perm[i])
		out.ColIdx = append(out.ColIdx, cols...)
		out.Val = append(out.Val, vals...)
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, nil
}
