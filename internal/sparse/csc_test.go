package sparse

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCSCConversionRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		a := ErdosRenyi[int64](120, 6, seed)
		c := a.ToCSC()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.NNZ() != a.NNZ() {
			t.Fatal("conversion changed nnz")
		}
		back := c.ToCSR()
		if !a.Equal(back) {
			t.Fatal("CSR->CSC->CSR round trip differs")
		}
	}
}

func TestCSCGetMatchesCSR(t *testing.T) {
	a := ErdosRenyi[int32](60, 4, 5)
	c := a.ToCSC()
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			rv, rok := a.Get(i, j)
			cv, cok := c.Get(i, j)
			if rok != cok || rv != cv {
				t.Fatalf("(%d,%d): CSR %d,%v vs CSC %d,%v", i, j, rv, rok, cv, cok)
			}
		}
	}
}

func TestCSCColAccess(t *testing.T) {
	a, _ := CSRFromTriplets(3, 4,
		[]int{0, 1, 2, 0}, []int{1, 1, 1, 3}, []int64{10, 20, 30, 40})
	c := a.ToCSC()
	rows, vals := c.Col(1)
	if len(rows) != 3 || rows[0] != 0 || rows[1] != 1 || rows[2] != 2 {
		t.Fatalf("Col(1) rows = %v", rows)
	}
	if vals[0] != 10 || vals[2] != 30 {
		t.Fatalf("Col(1) vals = %v", vals)
	}
	if c.ColNNZ(0) != 0 || c.ColNNZ(3) != 1 {
		t.Fatal("ColNNZ wrong")
	}
}

func TestCSCValidateDetectsCorruption(t *testing.T) {
	a := ErdosRenyi[int](30, 3, 7).ToCSC()
	a.ColPtr[0] = 1
	if err := a.Validate(); err == nil {
		t.Error("bad ColPtr[0] not detected")
	}
	b := ErdosRenyi[int](30, 3, 7).ToCSC()
	if b.NNZ() > 0 {
		b.RowIdx[0] = 99
		if err := b.Validate(); err == nil {
			t.Error("row out of range not detected")
		}
	}
}

func TestIdentityAndDiag(t *testing.T) {
	eye := Identity[int64](5)
	if err := eye.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v, ok := eye.Get(i, i); !ok || v != 1 {
			t.Fatal("identity diagonal wrong")
		}
	}
	d := Diag([]float64{1.5, 0, 2.5})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != 3 {
		t.Fatal("diag should store explicit zeros")
	}
	if v, _ := d.Get(2, 2); v != 2.5 {
		t.Fatal("diag value wrong")
	}
}

func TestPermuteRows(t *testing.T) {
	a, _ := CSRFromTriplets(3, 3,
		[]int{0, 1, 2}, []int{0, 1, 2}, []int64{10, 20, 30})
	p, err := a.PermuteRows([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Get(0, 2); v != 30 {
		t.Error("row 0 should be old row 2")
	}
	if v, _ := p.Get(1, 0); v != 10 {
		t.Error("row 1 should be old row 0")
	}
	if _, err := a.PermuteRows([]int{0, 0, 1}); err == nil {
		t.Error("duplicate perm entry accepted")
	}
	if _, err := a.PermuteRows([]int{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := a.PermuteRows([]int{0, 1, 5}); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestBinaryMatrixRoundTrip(t *testing.T) {
	a := ErdosRenyi[float64](90, 5, 8)
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryCSR[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Fatal("binary matrix round trip differs")
	}
}

func TestBinaryVectorRoundTrip(t *testing.T) {
	v := RandomVec[int64](1000, 120, 9)
	var buf bytes.Buffer
	if err := v.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryVec[int64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(back) {
		t.Fatal("binary vector round trip differs")
	}
}

func TestBinaryFloatValuesExact(t *testing.T) {
	v, _ := VecOf(4, []int{0, 1, 2}, []float64{3.14159265358979, -0.0, 1e-300})
	var buf bytes.Buffer
	if err := v.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryVec[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range v.Val {
		if back.Val[k] != v.Val[k] {
			t.Fatalf("value %d: %v != %v", k, back.Val[k], v.Val[k])
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	// Truncated stream.
	a := ErdosRenyi[int64](20, 3, 10)
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinaryCSR[int64](bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated matrix accepted")
	}
	// Wrong magic.
	if _, err := ReadBinaryCSR[int64](bytes.NewReader([]byte("not a matrix at all....."))); err == nil {
		t.Error("bad magic accepted")
	}
	// Matrix/vector kind confusion.
	if _, err := ReadBinaryVec[int64](bytes.NewReader(full)); err == nil {
		t.Error("matrix parsed as vector")
	}
	var vbuf bytes.Buffer
	v := RandomVec[int64](50, 5, 11)
	if err := v.WriteBinary(&vbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinaryCSR[int64](bytes.NewReader(vbuf.Bytes())); err == nil {
		t.Error("vector parsed as matrix")
	}
}

func TestCSCQuickAgainstDense(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 12
		coo := NewCOO[int64](n, n)
		for k, r := range raw {
			if k >= 40 {
				break
			}
			coo.Append(int(r)%n, int(r>>4)%n, int64(r%7))
		}
		a, err := coo.ToCSR(func(x, y int64) int64 { return x + y })
		if err != nil {
			return false
		}
		c := a.ToCSC()
		if c.Validate() != nil {
			return false
		}
		return c.ToCSR().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryCrossTypeRead(t *testing.T) {
	// A float-valued file read as int64 converts numerically (not by bit
	// reinterpretation), and vice versa.
	a, _ := CSRFromTriplets(2, 2, []int{0, 1}, []int{1, 0}, []float64{3.0, -2.0})
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	asInt, err := ReadBinaryCSR[int64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := asInt.Get(0, 1); v != 3 {
		t.Fatalf("cross-type value = %d, want 3", v)
	}
	if v, _ := asInt.Get(1, 0); v != -2 {
		t.Fatalf("cross-type value = %d, want -2", v)
	}
	b, _ := CSRFromTriplets(2, 2, []int{0}, []int{0}, []int64{7})
	buf.Reset()
	if err := b.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	asFloat, err := ReadBinaryCSR[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := asFloat.Get(0, 0); v != 7.0 {
		t.Fatalf("cross-type value = %v, want 7", v)
	}
}
