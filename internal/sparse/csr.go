package sparse

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// CSR is a Compressed Sparse Rows matrix, the format the paper uses because
// it is what Chapel supports. It has three arrays: RowPtr is an integer array
// of length NRows+1 storing the start and end positions of the nonzeros of
// each row; ColIdx stores the column ids of nonzeros (sorted within each
// row); Val stores the numerical values. Random access to the start of a row
// is O(1).
type CSR[T semiring.Number] struct {
	NRows  int
	NCols  int
	RowPtr []int
	ColIdx []int
	Val    []T
}

// NewCSR returns an empty NRows×NCols matrix.
func NewCSR[T semiring.Number](nrows, ncols int) *CSR[T] {
	return &CSR[T]{NRows: nrows, NCols: ncols, RowPtr: make([]int, nrows+1)}
}

// NNZ returns the number of stored elements.
func (a *CSR[T]) NNZ() int { return len(a.ColIdx) }

// Row returns the column-id and value slices of row i (aliases into the
// matrix storage, not copies).
func (a *CSR[T]) Row(i int) (cols []int, vals []T) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// RowNNZ returns the number of stored elements in row i.
func (a *CSR[T]) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Get returns the value at (i, j) and whether it is stored; binary search
// within the row.
func (a *CSR[T]) Get(i, j int) (T, bool) {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k], true
	}
	var zero T
	return zero, false
}

// Clone returns a deep copy.
func (a *CSR[T]) Clone() *CSR[T] {
	return &CSR[T]{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]T(nil), a.Val...),
	}
}

// Equal reports whether a and b have identical dimensions, pattern and values.
func (a *CSR[T]) Equal(b *CSR[T]) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// Validate checks the CSR invariants: RowPtr monotone from 0 to nnz, column
// ids within range and strictly increasing within each row, and consistent
// array lengths.
func (a *CSR[T]) Validate() error {
	if len(a.RowPtr) != a.NRows+1 {
		return fmt.Errorf("sparse: csr: len(RowPtr)=%d, want %d", len(a.RowPtr), a.NRows+1)
	}
	if len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: csr: %d column ids but %d values", len(a.ColIdx), len(a.Val))
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: csr: RowPtr[0]=%d, want 0", a.RowPtr[0])
	}
	if a.RowPtr[a.NRows] != len(a.ColIdx) {
		return fmt.Errorf("sparse: csr: RowPtr[n]=%d, want nnz=%d", a.RowPtr[a.NRows], len(a.ColIdx))
	}
	for i := 0; i < a.NRows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: csr: RowPtr not monotone at row %d", i)
		}
		cols, _ := a.Row(i)
		for k, j := range cols {
			if j < 0 || j >= a.NCols {
				return fmt.Errorf("sparse: csr: row %d: column %d out of range [0,%d)", i, j, a.NCols)
			}
			if k > 0 && cols[k-1] >= j {
				return fmt.Errorf("sparse: csr: row %d: columns not strictly increasing (%d >= %d)",
					i, cols[k-1], j)
			}
		}
	}
	return nil
}

// Transpose returns Aᵀ in CSR form (an O(nnz) counting transpose).
func (a *CSR[T]) Transpose() *CSR[T] {
	t := NewCSR[T](a.NCols, a.NRows)
	t.ColIdx = make([]int, len(a.ColIdx))
	t.Val = make([]T, len(a.Val))
	// Count entries per column of A = per row of T.
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.NRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:t.NRows]...)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			p := next[j]
			next[j]++
			t.ColIdx[p] = i
			t.Val[p] = vals[k]
		}
	}
	return t
}

// ExtractRow returns row i as a sparse vector of capacity NCols.
func (a *CSR[T]) ExtractRow(i int) *Vec[T] {
	cols, vals := a.Row(i)
	return &Vec[T]{
		N:   a.NCols,
		Ind: append([]int(nil), cols...),
		Val: append([]T(nil), vals...),
	}
}

// SubMatrix extracts the block with rows [r0, r1) and columns [c0, c1) as a
// new CSR matrix with local (shifted) indices. It is the primitive used to
// cut a global matrix into 2-D distributed blocks.
func (a *CSR[T]) SubMatrix(r0, r1, c0, c1 int) *CSR[T] {
	nr, nc := r1-r0, c1-c0
	s := NewCSR[T](nr, nc)
	for i := 0; i < nr; i++ {
		cols, vals := a.Row(r0 + i)
		// Binary search the column window within the sorted row.
		lo := sort.SearchInts(cols, c0)
		hi := sort.SearchInts(cols, c1)
		for k := lo; k < hi; k++ {
			s.ColIdx = append(s.ColIdx, cols[k]-c0)
			s.Val = append(s.Val, vals[k])
		}
		s.RowPtr[i+1] = len(s.ColIdx)
	}
	return s
}

// String renders small matrices for debugging.
func (a *CSR[T]) String() string {
	if a.NNZ() > 32 {
		return fmt.Sprintf("CSR{%dx%d nnz=%d}", a.NRows, a.NCols, a.NNZ())
	}
	s := fmt.Sprintf("CSR{%dx%d", a.NRows, a.NCols)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			s += fmt.Sprintf(" (%d,%d)=%v", i, j, vals[k])
		}
	}
	return s + "}"
}
