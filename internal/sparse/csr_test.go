package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

// smallCSR builds the 4x5 matrix
//
//	[ 1 . 2 . . ]
//	[ . . . 3 . ]
//	[ . . . . . ]
//	[ 4 . . . 5 ]
func smallCSR(t *testing.T) *CSR[int] {
	t.Helper()
	a, err := CSRFromTriplets(4, 5,
		[]int{0, 0, 1, 3, 3},
		[]int{0, 2, 3, 0, 4},
		[]int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCSRBasics(t *testing.T) {
	a := smallCSR(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", a.NNZ())
	}
	if a.RowNNZ(0) != 2 || a.RowNNZ(1) != 1 || a.RowNNZ(2) != 0 || a.RowNNZ(3) != 2 {
		t.Fatal("RowNNZ wrong")
	}
	if v, ok := a.Get(0, 2); !ok || v != 2 {
		t.Errorf("Get(0,2) = %d,%v", v, ok)
	}
	if v, ok := a.Get(3, 4); !ok || v != 5 {
		t.Errorf("Get(3,4) = %d,%v", v, ok)
	}
	if _, ok := a.Get(2, 2); ok {
		t.Error("Get(2,2) should be absent")
	}
	if _, ok := a.Get(0, 1); ok {
		t.Error("Get(0,1) should be absent")
	}
	cols, vals := a.Row(3)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 4 || vals[0] != 4 || vals[1] != 5 {
		t.Errorf("Row(3) = %v %v", cols, vals)
	}
}

func TestCSRCloneEqual(t *testing.T) {
	a := smallCSR(t)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Val[0] = 99
	if a.Equal(b) {
		t.Fatal("value change not detected")
	}
	if a.Val[0] == 99 {
		t.Fatal("clone aliases original")
	}
	c := smallCSR(t)
	c.NCols = 6
	if a.Equal(c) {
		t.Fatal("dimension change not detected")
	}
}

func TestCSRTranspose(t *testing.T) {
	a := smallCSR(t)
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	if at.NRows != a.NCols || at.NCols != a.NRows || at.NNZ() != a.NNZ() {
		t.Fatal("transpose dims/nnz wrong")
	}
	for i := 0; i < a.NRows; i++ {
		for j := 0; j < a.NCols; j++ {
			va, oka := a.Get(i, j)
			vt, okt := at.Get(j, i)
			if oka != okt || va != vt {
				t.Fatalf("A[%d,%d]=%d,%v but At[%d,%d]=%d,%v", i, j, va, oka, j, i, vt, okt)
			}
		}
	}
	// Double transpose is identity.
	if !a.Equal(at.Transpose()) {
		t.Fatal("transpose of transpose differs")
	}
}

func TestCSRTransposeRandom(t *testing.T) {
	a := ErdosRenyi[int64](200, 8, 7)
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	att := at.Transpose()
	if !a.Equal(att) {
		t.Fatal("random matrix: transpose of transpose differs")
	}
}

func TestCSRExtractRow(t *testing.T) {
	a := smallCSR(t)
	r := a.ExtractRow(0)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.N != 5 || r.NNZ() != 2 {
		t.Fatal("ExtractRow dims wrong")
	}
	if v, ok := r.Get(2); !ok || v != 2 {
		t.Fatal("ExtractRow value wrong")
	}
	empty := a.ExtractRow(2)
	if empty.NNZ() != 0 {
		t.Fatal("empty row extraction wrong")
	}
}

func TestCSRSubMatrix(t *testing.T) {
	a := smallCSR(t)
	s := a.SubMatrix(0, 2, 0, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NRows != 2 || s.NCols != 3 {
		t.Fatal("submatrix dims wrong")
	}
	if v, ok := s.Get(0, 0); !ok || v != 1 {
		t.Error("s[0,0] wrong")
	}
	if v, ok := s.Get(0, 2); !ok || v != 2 {
		t.Error("s[0,2] wrong")
	}
	if _, ok := s.Get(1, 0); ok {
		t.Error("s[1,0] should be absent")
	}
	// Full-range submatrix equals the original.
	if !a.Equal(a.SubMatrix(0, a.NRows, 0, a.NCols)) {
		t.Error("identity submatrix differs")
	}
}

func TestCSRSubMatrixTiling(t *testing.T) {
	// Cutting a random matrix into a 3x3 tile grid must partition the nnz.
	a := ErdosRenyi[int32](100, 5, 3)
	rb := []int{0, 33, 66, 100}
	cb := []int{0, 40, 80, 100}
	total := 0
	for bi := 0; bi < 3; bi++ {
		for bj := 0; bj < 3; bj++ {
			s := a.SubMatrix(rb[bi], rb[bi+1], cb[bj], cb[bj+1])
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			total += s.NNZ()
			// Every entry must match the original.
			for i := 0; i < s.NRows; i++ {
				cols, vals := s.Row(i)
				for k, j := range cols {
					v, ok := a.Get(rb[bi]+i, cb[bj]+j)
					if !ok || v != vals[k] {
						t.Fatalf("tile (%d,%d) entry (%d,%d) mismatch", bi, bj, i, j)
					}
				}
			}
		}
	}
	if total != a.NNZ() {
		t.Fatalf("tiles hold %d nnz, matrix has %d", total, a.NNZ())
	}
}

func TestCSRValidateDetectsCorruption(t *testing.T) {
	check := func(name string, corrupt func(*CSR[int])) {
		a := smallCSR(t)
		corrupt(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s not detected", name)
		}
	}
	check("rowptr length", func(a *CSR[int]) { a.RowPtr = a.RowPtr[:3] })
	check("val length", func(a *CSR[int]) { a.Val = a.Val[:2] })
	check("rowptr[0]", func(a *CSR[int]) { a.RowPtr[0] = 1 })
	check("rowptr[n]", func(a *CSR[int]) { a.RowPtr[4] = 3 })
	check("nonmonotone rowptr", func(a *CSR[int]) { a.RowPtr[1] = 5; a.RowPtr[2] = 3 })
	check("column out of range", func(a *CSR[int]) { a.ColIdx[0] = 9 })
	check("columns out of order", func(a *CSR[int]) { a.ColIdx[0], a.ColIdx[1] = a.ColIdx[1], a.ColIdx[0] })
}

func TestCOODuplicateCombining(t *testing.T) {
	c := NewCOO[int](3, 3)
	c.Append(1, 1, 10)
	c.Append(0, 2, 1)
	c.Append(1, 1, 5)
	c.Append(1, 1, 2)
	a, err := c.ToCSR(semiring.Plus[int])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", a.NNZ())
	}
	if v, _ := a.Get(1, 1); v != 17 {
		t.Errorf("summed duplicate = %d, want 17", v)
	}
	// Second keeps the last (in sorted order, insertion order among equals is
	// preserved by the stable handling in ToCSR only if sort is stable; we
	// use Min to get a deterministic answer instead).
	c2 := NewCOO[int](2, 2)
	c2.Append(0, 0, 9)
	c2.Append(0, 0, 4)
	b, err := c2.ToCSR(semiring.Min[int])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Get(0, 0); v != 4 {
		t.Errorf("min duplicate = %d, want 4", v)
	}
}

func TestCOOBoundsChecked(t *testing.T) {
	c := NewCOO[int](2, 2)
	c.Append(2, 0, 1)
	if _, err := c.ToCSR(semiring.Plus[int]); err == nil {
		t.Error("row out of range not detected")
	}
	c2 := NewCOO[int](2, 2)
	c2.Append(0, -1, 1)
	if _, err := c2.ToCSR(semiring.Plus[int]); err == nil {
		t.Error("col out of range not detected")
	}
}

func TestCOORoundTrip(t *testing.T) {
	a := ErdosRenyi[int64](150, 6, 11)
	back, err := a.ToCOO().ToCSR(semiring.Plus[int64])
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Fatal("COO round trip differs")
	}
}

func TestCSRFromTripletsRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	var rows, cols []int
	var vals []int64
	ref := map[[2]int]int64{}
	for k := 0; k < 300; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		v := rng.Int63n(100)
		rows = append(rows, i)
		cols = append(cols, j)
		vals = append(vals, v)
		ref[[2]int{i, j}] += v
	}
	a, err := CSRFromTriplets(n, n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != len(ref) {
		t.Fatalf("nnz = %d, want %d", a.NNZ(), len(ref))
	}
	for ij, want := range ref {
		got, ok := a.Get(ij[0], ij[1])
		if !ok || got != want {
			t.Fatalf("A[%d,%d] = %d,%v; want %d", ij[0], ij[1], got, ok, want)
		}
	}
}

func TestCSRString(t *testing.T) {
	if smallCSR(t).String() == "" {
		t.Error("empty String()")
	}
	if ErdosRenyi[int](100, 5, 1).String() == "" {
		t.Error("empty String() for big matrix")
	}
}
