package sparse

import (
	"fmt"

	"repro/internal/semiring"
)

// DCSC is the doubly-compressed sparse block format of Buluç & Gilbert's
// hypersparse kernels (the storage behind their Sparse SUMMA): on top of the
// usual compressed index/value arrays, the row dimension itself is
// compressed — only rows that actually hold an entry appear, each with its
// own pointer range. A CSR block of an n-row matrix costs O(n) to touch even
// when it holds a single entry (the RowPtr scan); a DCSC block costs
// O(nzr + nnz) where nzr is the number of non-empty rows. On a p-locale SUMMA
// grid the per-block density drops like nnz/p², so blocks go hypersparse
// (nnz < nrows) long before the matrix does, and this format is what keeps
// the stage multiplies from paying O(n/√p) per empty block.
//
// The repo stores matrices row-major (CSR), so the compressed dimension here
// is rows — the layout is Buluç & Gilbert's DCSC with the roles of rows and
// columns transposed to match.
type DCSC[T semiring.Number] struct {
	NRows, NCols int
	// Rows lists the non-empty rows in increasing order.
	Rows []int
	// RowPtr has len(Rows)+1 entries; the k-th non-empty row's entries are
	// ColIdx/Val[RowPtr[k]:RowPtr[k+1]].
	RowPtr []int
	// ColIdx/Val hold the entries of the non-empty rows, concatenated, with
	// column indices sorted within each row (the CSR invariant carries over).
	ColIdx []int
	Val    []T
}

// Hypersparse reports whether a block is worth double compression: fewer
// entries than rows means the CSR RowPtr array is mostly padding.
func Hypersparse[T semiring.Number](a *CSR[T]) bool {
	return a.NNZ() < a.NRows
}

// NNZ returns the stored-entry count.
func (d *DCSC[T]) NNZ() int { return len(d.ColIdx) }

// NzRows returns the number of non-empty rows.
func (d *DCSC[T]) NzRows() int { return len(d.Rows) }

// RowAt returns the k-th non-empty row: its global row index and its column
// and value slices. k indexes [0, NzRows()), not the row dimension.
func (d *DCSC[T]) RowAt(k int) (row int, cols []int, vals []T) {
	lo, hi := d.RowPtr[k], d.RowPtr[k+1]
	return d.Rows[k], d.ColIdx[lo:hi], d.Val[lo:hi]
}

// FromCSR rebuilds d as the doubly-compressed image of a, reusing d's
// backing arrays: after the first call sized d to a block's high-water marks,
// further conversions allocate nothing. This is the `dcsc_convert` kernel of
// the CI alloc gate.
func (d *DCSC[T]) FromCSR(a *CSR[T]) {
	d.NRows, d.NCols = a.NRows, a.NCols
	d.Rows = d.Rows[:0]
	d.RowPtr = append(d.RowPtr[:0], 0)
	d.ColIdx = d.ColIdx[:0]
	d.Val = d.Val[:0]
	for i := 0; i < a.NRows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo == hi {
			continue
		}
		d.Rows = append(d.Rows, i)
		d.ColIdx = append(d.ColIdx, a.ColIdx[lo:hi]...)
		d.Val = append(d.Val, a.Val[lo:hi]...)
		d.RowPtr = append(d.RowPtr, len(d.ColIdx))
	}
}

// ToDCSC converts a CSR block into a freshly allocated DCSC block.
func ToDCSC[T semiring.Number](a *CSR[T]) *DCSC[T] {
	d := &DCSC[T]{}
	d.FromCSR(a)
	return d
}

// ToCSR expands the doubly-compressed block back to CSR; the round trip
// d.FromCSR(a); d.ToCSR() reproduces a exactly.
func (d *DCSC[T]) ToCSR() *CSR[T] {
	a := NewCSR[T](d.NRows, d.NCols)
	a.ColIdx = append(a.ColIdx, d.ColIdx...)
	a.Val = append(a.Val, d.Val...)
	for k, r := range d.Rows {
		a.RowPtr[r+1] = d.RowPtr[k+1] - d.RowPtr[k]
	}
	for i := 0; i < d.NRows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}

// Validate checks the structural invariants.
func (d *DCSC[T]) Validate() error {
	if d.NRows < 0 || d.NCols < 0 {
		return fmt.Errorf("sparse: DCSC: negative dimensions %dx%d", d.NRows, d.NCols)
	}
	if len(d.RowPtr) != len(d.Rows)+1 {
		return fmt.Errorf("sparse: DCSC: RowPtr has %d entries for %d rows", len(d.RowPtr), len(d.Rows))
	}
	if len(d.RowPtr) > 0 && (d.RowPtr[0] != 0 || d.RowPtr[len(d.RowPtr)-1] != len(d.ColIdx)) {
		return fmt.Errorf("sparse: DCSC: RowPtr does not span ColIdx")
	}
	if len(d.ColIdx) != len(d.Val) {
		return fmt.Errorf("sparse: DCSC: %d indices vs %d values", len(d.ColIdx), len(d.Val))
	}
	for k, r := range d.Rows {
		if r < 0 || r >= d.NRows {
			return fmt.Errorf("sparse: DCSC: row %d out of range", r)
		}
		if k > 0 && d.Rows[k-1] >= r {
			return fmt.Errorf("sparse: DCSC: rows not strictly increasing at %d", k)
		}
		lo, hi := d.RowPtr[k], d.RowPtr[k+1]
		if lo >= hi {
			return fmt.Errorf("sparse: DCSC: compressed row %d is empty", r)
		}
		for t := lo; t < hi; t++ {
			if d.ColIdx[t] < 0 || d.ColIdx[t] >= d.NCols {
				return fmt.Errorf("sparse: DCSC: column %d out of range in row %d", d.ColIdx[t], r)
			}
			if t > lo && d.ColIdx[t-1] >= d.ColIdx[t] {
				return fmt.Errorf("sparse: DCSC: columns not strictly increasing in row %d", r)
			}
		}
	}
	return nil
}
