package sparse

import (
	"testing"
)

func TestDCSCRoundTrip(t *testing.T) {
	for _, a := range []*CSR[int64]{
		NewCSR[int64](0, 0),
		NewCSR[int64](5, 7),
		ErdosRenyi[int64](40, 3, 11),
		ErdosRenyi[int64](64, 0.2, 12), // hypersparse: nnz << nrows
		Ring[int64](9),
	} {
		d := ToDCSC(a)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if got, want := d.NNZ(), a.NNZ(); got != want {
			t.Fatalf("nnz %d, want %d", got, want)
		}
		back := d.ToCSR()
		if !back.Equal(a) {
			t.Fatalf("round trip differs for %v", a)
		}
	}
}

func TestDCSCHypersparse(t *testing.T) {
	dense := Ring[int64](8)
	if Hypersparse(dense) {
		t.Error("ring flagged hypersparse")
	}
	sp := NewCSR[int64](100, 100)
	sp.ColIdx = append(sp.ColIdx, 3)
	sp.Val = append(sp.Val, 1)
	for i := 42; i < len(sp.RowPtr); i++ {
		sp.RowPtr[i] = 1
	}
	if !Hypersparse(sp) {
		t.Error("1-entry 100-row block not flagged hypersparse")
	}
	d := ToDCSC(sp)
	if d.NzRows() != 1 {
		t.Fatalf("NzRows = %d, want 1", d.NzRows())
	}
	r, cols, vals := d.RowAt(0)
	if r != 41 || len(cols) != 1 || cols[0] != 3 || vals[0] != 1 {
		t.Fatalf("RowAt(0) = (%d, %v, %v)", r, cols, vals)
	}
}

func TestDCSCFromCSRReusesBuffers(t *testing.T) {
	a := ErdosRenyi[int64](50, 4, 13)
	var d DCSC[int64]
	d.FromCSR(a)
	p0 := &d.ColIdx[0]
	d.FromCSR(a) // same matrix: no growth, same backing arrays
	if p0 != &d.ColIdx[0] {
		t.Error("FromCSR reallocated on a warm conversion")
	}
	if !d.ToCSR().Equal(a) {
		t.Error("warm round trip differs")
	}
}

// FuzzDCSC drives the CSR↔DCSC round trip and iteration-order equivalence
// from fuzzed triplets: conversion must preserve every entry bitwise, and
// walking the compressed rows must visit the same (row, col, val) sequence
// as walking the CSR rows.
func FuzzDCSC(f *testing.F) {
	f.Add(uint16(8), uint16(8), uint32(12), int64(1))
	f.Add(uint16(100), uint16(3), uint32(2), int64(7)) // hypersparse
	f.Add(uint16(1), uint16(200), uint32(50), int64(3))
	f.Fuzz(func(t *testing.T, nr16, nc16 uint16, nnz32 uint32, seed int64) {
		nr := int(nr16%200) + 1
		nc := int(nc16%200) + 1
		nnz := int(nnz32 % 400)
		rows := make([]int, nnz)
		cols := make([]int, nnz)
		vals := make([]int64, nnz)
		s := seed
		for k := 0; k < nnz; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			rows[k] = int(uint64(s)>>33) % nr
			s = s*6364136223846793005 + 1442695040888963407
			cols[k] = int(uint64(s)>>33) % nc
			vals[k] = s >> 48
		}
		a, err := CSRFromTriplets(nr, nc, rows, cols, vals)
		if err != nil {
			t.Fatal(err)
		}
		d := ToDCSC(a)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if !d.ToCSR().Equal(a) {
			t.Fatal("DCSC round trip differs from source CSR")
		}
		// Iteration-order equivalence: the doubly-compressed walk must
		// reproduce the CSR walk exactly, skipping only empty rows.
		k := 0
		for i := 0; i < a.NRows; i++ {
			cs, vs := a.Row(i)
			if len(cs) == 0 {
				continue
			}
			r, dcs, dvs := d.RowAt(k)
			k++
			if r != i || len(dcs) != len(cs) {
				t.Fatalf("row %d: DCSC has (%d, %d cols), want (%d, %d)", k-1, r, len(dcs), i, len(cs))
			}
			for j := range cs {
				if dcs[j] != cs[j] || dvs[j] != vs[j] {
					t.Fatalf("row %d col %d: (%d,%v) vs CSR (%d,%v)", i, j, dcs[j], dvs[j], cs[j], vs[j])
				}
			}
		}
		if k != d.NzRows() {
			t.Fatalf("visited %d compressed rows, DCSC lists %d", k, d.NzRows())
		}
	})
}
