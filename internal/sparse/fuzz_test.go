package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: any input must either parse into a
// structure that passes Validate, or return an error — never panic and never
// yield a corrupt structure.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n3 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 5 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999999999\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket[float64](strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parser returned corrupt matrix: %v\ninput: %q", verr, input)
		}
	})
}

func FuzzReadBinaryCSR(f *testing.F) {
	a := ErdosRenyi[int64](10, 2, 1)
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:8])
	f.Fuzz(func(t *testing.T, input []byte) {
		m, err := ReadBinaryCSR[int64](bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("binary reader returned corrupt matrix: %v", verr)
		}
	})
}

func FuzzReadBinaryVec(f *testing.F) {
	v := RandomVec[float64](30, 6, 1)
	var buf bytes.Buffer
	if err := v.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GBLB garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		w, err := ReadBinaryVec[float64](bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("binary reader returned corrupt vector: %v", verr)
		}
	})
}

// FuzzBucketSPA drives the sort-free bucket accumulator with random
// (n, nnz, workers, buckets) shapes and a seeded entry stream: the output
// must always be sorted, duplicate-free, and bitwise identical to the
// sequential SPA + merge-sort reference (the merge-sort engine's resolution
// of the same stream).
func FuzzBucketSPA(f *testing.F) {
	f.Add(uint16(100), uint16(500), uint8(1), uint8(1), int64(1))
	f.Add(uint16(1000), uint16(200), uint8(4), uint8(16), int64(2))
	f.Add(uint16(7), uint16(900), uint8(9), uint8(200), int64(3))
	f.Add(uint16(1), uint16(1), uint8(0), uint8(0), int64(4))
	f.Fuzz(func(t *testing.T, n16, nnz16 uint16, workers8, buckets8 uint8, seed int64) {
		n := int(n16)%5000 + 1
		nnz := int(nnz16) % 5000
		workers := int(workers8)%16 + 1
		buckets := int(buckets8) + 1
		r := rand.New(rand.NewSource(seed))
		inds := make([]int, nnz)
		vals := make([]int64, nnz)
		for k := range inds {
			inds[k] = r.Intn(n)
			vals[k] = r.Int63n(1 << 20)
		}
		wantInd, wantVal := bucketReference(n, inds, vals, true)

		s := NewBucketSPA[int64](n, workers, buckets)
		appendChunked(s, inds, vals)
		ind, val, st := s.Merge(nil, workers)

		if len(ind) != len(wantInd) {
			t.Fatalf("nnz %d, want %d (n=%d w=%d b=%d)", len(ind), len(wantInd), n, workers, buckets)
		}
		for k := range ind {
			if k > 0 && ind[k] <= ind[k-1] {
				t.Fatalf("indices not strictly sorted at %d: %v", k, ind[k-1:k+1])
			}
			if ind[k] != wantInd[k] || val[k] != wantVal[k] {
				t.Fatalf("entry %d = (%d,%d), want (%d,%d) (n=%d w=%d b=%d)",
					k, ind[k], val[k], wantInd[k], wantVal[k], n, workers, buckets)
			}
		}
		if st.Entries != int64(nnz) || st.Claimed != len(ind) || st.Scanned != int64(n) {
			t.Fatalf("stats %+v inconsistent (nnz=%d out=%d n=%d)", st, nnz, len(ind), n)
		}
	})
}
