package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: any input must either parse into a
// structure that passes Validate, or return an error — never panic and never
// yield a corrupt structure.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n3 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 5 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999999999\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket[float64](strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parser returned corrupt matrix: %v\ninput: %q", verr, input)
		}
	})
}

func FuzzReadBinaryCSR(f *testing.F) {
	a := ErdosRenyi[int64](10, 2, 1)
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:8])
	f.Fuzz(func(t *testing.T, input []byte) {
		m, err := ReadBinaryCSR[int64](bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("binary reader returned corrupt matrix: %v", verr)
		}
	})
}

func FuzzReadBinaryVec(f *testing.F) {
	v := RandomVec[float64](30, 6, 1)
	var buf bytes.Buffer
	if err := v.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GBLB garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		w, err := ReadBinaryVec[float64](bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("binary reader returned corrupt vector: %v", verr)
		}
	})
}
