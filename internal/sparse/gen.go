package sparse

import (
	"math"
	"math/rand"

	"repro/internal/semiring"
)

// ErdosRenyi generates an n×n sparse matrix from the G(n, p) model with
// p = d/n, so that in expectation d nonzeros are uniformly distributed in
// each row. Values are drawn uniformly from [1, 100). The generator is
// deterministic for a given seed.
//
// Rather than flipping n² coins, each row draws its nonzero count from the
// Binomial(n, d/n) distribution (approximated by a normal for large n, exact
// for small) and then samples that many distinct column ids — equivalent in
// distribution and O(nnz) time.
func ErdosRenyi[T semiring.Number](n int, d float64, seed int64) *CSR[T] {
	rng := rand.New(rand.NewSource(seed))
	a := NewCSR[T](n, n)
	est := int(float64(n)*d*11/10) + 16
	a.ColIdx = make([]int, 0, est)
	a.Val = make([]T, 0, est)
	p := d / float64(n)
	if p > 1 {
		p = 1
	}
	scratch := make(map[int]struct{}, int(d*2)+8)
	var row []int
	for i := 0; i < n; i++ {
		k := binomial(rng, n, p)
		sampleDistinct(rng, n, k, scratch)
		row = row[:0]
		for j := range scratch {
			row = append(row, j)
		}
		RadixSortInts(row)
		a.ColIdx = append(a.ColIdx, row...)
		for range row {
			a.Val = append(a.Val, T(1+rng.Intn(99)))
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

// binomial draws from Binomial(n, p): exact inversion for small mean, normal
// approximation (clamped) for large.
func binomial(rng *rand.Rand, n int, p float64) int {
	mean := float64(n) * p
	if mean < 32 {
		// Knuth-style: count geometric jumps.
		if p <= 0 {
			return 0
		}
		lq := math.Log1p(-p)
		k, x := 0, 0
		for {
			step := int(math.Floor(math.Log(1-rng.Float64())/lq)) + 1
			x += step
			if x > n {
				break
			}
			k++
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// sampleDistinct fills out with k distinct integers in [0, n) using Floyd's
// algorithm. out is cleared first.
func sampleDistinct(rng *rand.Rand, n, k int, out map[int]struct{}) {
	for j := range out {
		delete(out, j)
	}
	if k >= n {
		for j := 0; j < n; j++ {
			out[j] = struct{}{}
		}
		return
	}
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := out[t]; dup {
			out[j] = struct{}{}
		} else {
			out[t] = struct{}{}
		}
	}
}

// RandomVec generates a sparse vector of capacity n with exactly nnz stored
// elements at distinct uniformly random indices (so density f = nnz/n, the
// paper's workload parameter). Values are drawn uniformly from [1, 100).
func RandomVec[T semiring.Number](n, nnz int, seed int64) *Vec[T] {
	if nnz > n {
		nnz = n
	}
	rng := rand.New(rand.NewSource(seed))
	v := &Vec[T]{N: n, Ind: make([]int, 0, nnz), Val: make([]T, 0, nnz)}
	if nnz*8 > n {
		// Dense regime: a partial Fisher–Yates shuffle of [0, n) is faster
		// and far smaller than a hash set at the 100M-nonzero scales of the
		// paper's experiments.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < nnz; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		v.Ind = v.Ind[:nnz]
		copy(v.Ind, perm[:nnz])
		RadixSortInts(v.Ind)
	} else {
		set := make(map[int]struct{}, nnz*2)
		sampleDistinct(rng, n, nnz, set)
		for i := range set {
			v.Ind = append(v.Ind, i)
		}
		RadixSortInts(v.Ind)
	}
	for range v.Ind {
		v.Val = append(v.Val, T(1+rng.Intn(99)))
	}
	return v
}

// RandomBoolDense generates a dense vector of capacity n whose entries are 1
// with probability keep (else 0). The paper initializes the dense eWiseMult
// operand this way so that about half the sparse entries survive.
func RandomBoolDense[T semiring.Number](n int, keep float64, seed int64) *Dense[T] {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense[T](n)
	for i := range d.Data {
		if rng.Float64() < keep {
			d.Data[i] = 1
		}
	}
	return d
}

// RMAT generates a scale-free 2^scale × 2^scale matrix with edgeFactor
// nonzeros per row in expectation, using the recursive R-MAT process with
// the Graph500 parameters (a,b,c,d) = (0.57, 0.19, 0.19, 0.05). Duplicate
// coordinates are summed. Useful as a skewed counterpart to Erdős–Rényi in
// tests and examples.
func RMAT[T semiring.Number](scale int, edgeFactor int, seed int64) (*CSR[T], error) {
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	coo := NewCOO[T](n, n)
	for e := 0; e < m; e++ {
		i, j := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				j |= bit
			case r < a+b+c:
				i |= bit
			default:
				i |= bit
				j |= bit
			}
		}
		coo.Append(i, j, 1)
	}
	return coo.ToCSR(semiring.Plus[T])
}

// Ring generates the adjacency matrix of a directed n-cycle (i -> i+1 mod n)
// with unit weights; handy for deterministic tests of traversal algorithms.
func Ring[T semiring.Number](n int) *CSR[T] {
	a := NewCSR[T](n, n)
	a.ColIdx = make([]int, n)
	a.Val = make([]T, n)
	for i := 0; i < n; i++ {
		a.ColIdx[i] = (i + 1) % n
		a.Val[i] = 1
		a.RowPtr[i+1] = i + 1
	}
	return a
}

// Grid2D generates the adjacency matrix of an undirected rows×cols grid graph
// (4-neighborhood), unit weights. The matrix is symmetric.
func Grid2D[T semiring.Number](rows, cols int) (*CSR[T], error) {
	n := rows * cols
	coo := NewCOO[T](n, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				coo.Append(id(r, c), id(r, c+1), 1)
				coo.Append(id(r, c+1), id(r, c), 1)
			}
			if r+1 < rows {
				coo.Append(id(r, c), id(r+1, c), 1)
				coo.Append(id(r+1, c), id(r, c), 1)
			}
		}
	}
	return coo.ToCSR(semiring.Second[T])
}
