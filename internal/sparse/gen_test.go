package sparse

import (
	"math"
	"testing"
)

func TestErdosRenyiShape(t *testing.T) {
	n, d := 5000, 8.0
	a := ErdosRenyi[int64](n, d, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NRows != n || a.NCols != n {
		t.Fatal("dims wrong")
	}
	// Expected nnz = n*d; allow 5% slack (binomial concentration).
	want := float64(n) * d
	got := float64(a.NNZ())
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("nnz = %.0f, want ~%.0f", got, want)
	}
	// Row degrees should concentrate: standard deviation ~ sqrt(d).
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		deg := float64(a.RowNNZ(i))
		sum += deg
		sumSq += deg * deg
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-d) > 0.5 {
		t.Errorf("mean degree = %.2f, want ~%.1f", mean, d)
	}
	if variance < d/2 || variance > d*2 {
		t.Errorf("degree variance = %.2f, want ~%.1f", variance, d)
	}
	// Values must be in [1, 100).
	for _, v := range a.Val {
		if v < 1 || v >= 100 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi[int32](300, 4, 7)
	b := ErdosRenyi[int32](300, 4, 7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := ErdosRenyi[int32](300, 4, 8)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestErdosRenyiDense(t *testing.T) {
	// d >= n clamps p to 1: a full matrix.
	a := ErdosRenyi[int8](20, 25, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 400 {
		t.Fatalf("p=1 matrix nnz = %d, want 400", a.NNZ())
	}
}

func TestErdosRenyiTiny(t *testing.T) {
	a := ErdosRenyi[int](1, 0.5, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := ErdosRenyi[int](10, 0, 1)
	if empty.NNZ() != 0 {
		t.Fatalf("d=0 nnz = %d, want 0", empty.NNZ())
	}
}

func TestRandomVec(t *testing.T) {
	n, nnz := 10000, 200
	v := RandomVec[float64](n, nnz, 9)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != nnz {
		t.Fatalf("nnz = %d, want exactly %d", v.NNZ(), nnz)
	}
	if math.Abs(v.Density()-0.02) > 1e-9 {
		t.Errorf("density = %v, want 0.02", v.Density())
	}
	for _, x := range v.Val {
		if x < 1 || x >= 100 {
			t.Fatalf("value %v out of range", x)
		}
	}
	// Deterministic.
	w := RandomVec[float64](n, nnz, 9)
	if !v.Equal(w) {
		t.Fatal("same seed produced different vectors")
	}
}

func TestRandomVecClamped(t *testing.T) {
	v := RandomVec[int](5, 100, 3)
	if v.NNZ() != 5 {
		t.Fatalf("nnz = %d, want clamped to 5", v.NNZ())
	}
	for k, i := range v.Ind {
		if i != k {
			t.Fatalf("full vector should hold every index, got %v", v.Ind)
		}
	}
}

func TestRandomBoolDense(t *testing.T) {
	n := 100000
	d := RandomBoolDense[int](n, 0.5, 4)
	ones := 0
	for _, x := range d.Data {
		if x != 0 && x != 1 {
			t.Fatalf("non-boolean value %d", x)
		}
		if x == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("keep fraction = %.3f, want ~0.5", frac)
	}
}

func TestRMAT(t *testing.T) {
	a, err := RMAT[int64](10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NRows != 1024 {
		t.Fatal("dims wrong")
	}
	if a.NNZ() == 0 || a.NNZ() > 1024*8 {
		t.Fatalf("nnz = %d out of expected range", a.NNZ())
	}
	// R-MAT must be skewed: max degree far above the mean.
	maxDeg := 0
	for i := 0; i < a.NRows; i++ {
		if a.RowNNZ(i) > maxDeg {
			maxDeg = a.RowNNZ(i)
		}
	}
	if maxDeg < 3*8 {
		t.Errorf("max degree %d does not look skewed", maxDeg)
	}
}

func TestRing(t *testing.T) {
	a := Ring[int](5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 5 {
		t.Fatal("ring nnz wrong")
	}
	for i := 0; i < 5; i++ {
		if v, ok := a.Get(i, (i+1)%5); !ok || v != 1 {
			t.Fatalf("missing edge %d->%d", i, (i+1)%5)
		}
	}
}

func TestGrid2D(t *testing.T) {
	a, err := Grid2D[int](3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected grid: edges = rows*(cols-1) + (rows-1)*cols, stored twice.
	wantEdges := 2 * (3*3 + 2*4)
	if a.NNZ() != wantEdges {
		t.Fatalf("grid nnz = %d, want %d", a.NNZ(), wantEdges)
	}
	// Symmetry.
	if !a.Equal(a.Transpose()) {
		t.Fatal("grid adjacency not symmetric")
	}
	// Corner vertex has exactly 2 neighbors.
	if a.RowNNZ(0) != 2 {
		t.Fatalf("corner degree = %d, want 2", a.RowNNZ(0))
	}
	// Interior vertex has 4.
	if a.RowNNZ(1*4+1) != 4 {
		t.Fatalf("interior degree = %d, want 4", a.RowNNZ(5))
	}
}

func TestBinomialDistribution(t *testing.T) {
	// Large-mean path (normal approximation) and small-mean path must both
	// produce plausible means.
	rngTest := func(n int, p float64, label string) {
		a := ErdosRenyi[int](n, p*float64(n), 99)
		mean := float64(a.NNZ()) / float64(n)
		want := p * float64(n)
		if math.Abs(mean-want)/want > 0.15 {
			t.Errorf("%s: mean degree %.2f, want ~%.2f", label, mean, want)
		}
	}
	rngTest(2000, 0.002, "small mean")   // mean 4 -> exact path
	rngTest(2000, 0.03, "moderate mean") // mean 60 -> normal path
}
