package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/semiring"
)

// WriteMatrixMarket writes a in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general"), 1-based indices.
func WriteMatrixMarket[T semiring.Number](w io.Writer, a *CSR[T]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.NRows, a.NCols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %v\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into a CSR matrix,
// summing duplicate coordinates. Both "real" and "integer" fields are
// accepted; "pattern" files get unit values.
func ReadMatrixMarket[T semiring.Number](r io.Reader) (*CSR[T], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: mm: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 3 || !strings.HasPrefix(header[0], "%%matrixmarket") {
		return nil, fmt.Errorf("sparse: mm: missing %%%%MatrixMarket header")
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: mm: only 'matrix coordinate' files are supported")
	}
	pattern := len(header) > 3 && header[3] == "pattern"
	symmetric := len(header) > 4 && header[4] == "symmetric"

	// Size line (skipping comments).
	var nrows, ncols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &nrows, &ncols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: mm: bad size line %q: %w", line, err)
		}
		break
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, fmt.Errorf("sparse: mm: bad dimensions %dx%d", nrows, ncols)
	}

	coo := NewCOO[T](nrows, ncols)
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: mm: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: mm: bad row in %q: %w", line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: mm: bad col in %q: %w", line, err)
		}
		v := 1.0
		if !pattern {
			if len(fields) < 3 {
				return nil, fmt.Errorf("sparse: mm: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: mm: bad value in %q: %w", line, err)
			}
		}
		coo.Append(i-1, j-1, T(v))
		if symmetric && i != j {
			coo.Append(j-1, i-1, T(v))
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: mm: expected %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(semiring.Plus[T])
}
