package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := ErdosRenyi[float64](80, 5, 77)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Fatal("round trip differs")
	}
}

func TestMatrixMarketIntValues(t *testing.T) {
	a, _ := CSRFromTriplets(3, 4, []int{0, 2}, []int{1, 3}, []int64{5, -7})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket[int64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Fatal("integer round trip differs")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
`
	a, err := ReadMatrixMarket[int64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d", a.NNZ())
	}
	if v, ok := a.Get(0, 1); !ok || v != 1 {
		t.Error("pattern entry (0,1) wrong")
	}
	if v, ok := a.Get(2, 0); !ok || v != 1 {
		t.Error("pattern entry (2,0) wrong")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5.0
3 3 1.0
`
	a, err := ReadMatrixMarket[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 { // (1,0), (0,1) mirrored, (2,2) diagonal once
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
	if v, _ := a.Get(0, 1); v != 5 {
		t.Error("mirrored entry missing")
	}
	if v, _ := a.Get(1, 0); v != 5 {
		t.Error("original entry missing")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "hello\n1 1 1\n1 1 2.0\n",
		"not coordinate": "%%MatrixMarket matrix array real general\n1 1\n2.0\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"zero dims":      "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"missing value":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad row":        "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 2.0\n",
		"bad col":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 2.0\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 x\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 2.0\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 2.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket[float64](strings.NewReader(in)); err == nil {
			t.Errorf("%s: error not detected", name)
		}
	}
}

func TestMatrixMarketEmptyMatrix(t *testing.T) {
	a := NewCSR[float64](5, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 0 || back.NRows != 5 {
		t.Fatal("empty matrix round trip wrong")
	}
}
