package sparse

import (
	"sync"

	"repro/internal/semiring"
)

// ScratchPool is the kernel scratch arena: a concurrency-safe pool of the
// dense accumulators, index buffers and output vectors the hot kernels would
// otherwise allocate on every call. A kernel checks scratch out, uses it, and
// returns it; in steady state (repeated calls with stable problem sizes) the
// checkout is a pop and the kernel allocates nothing.
//
// Aliasing rules (see DESIGN.md §10): a kernel must not retain any reference
// into checked-out scratch after returning it, and anything handed to the
// caller (an output vector, a merged run) must either come from a Get* the
// caller is told it owns, or be freshly allocated. Returning an object twice,
// or returning an object while a reference escapes, corrupts later checkouts.
//
// The generic accessors (GetAtomicSPA, GetSPA, GetBucketSPA, GetVec) share
// one underlying pool per category across element types; a pooled object of
// the wrong element type is simply dropped and a fresh one allocated, so
// mixed-type workloads stay correct (single-type workloads — every benchmark
// and every BFS-family algorithm — always hit).
//
// The zero value is NOT ready; use NewScratchPool. All methods are nil-safe:
// a nil *ScratchPool degrades every Get* to a plain allocation and every Put*
// to a no-op, so unpooled call sites keep working unchanged.
type ScratchPool struct {
	mu     sync.Mutex
	ints   [][]int
	int32s [][]int32
	int64s [][]int64

	atomicSpas sync.Pool // *AtomicSPA[T]
	spas       sync.Pool // *SPA[T]
	buckets    sync.Pool // *BucketSPA[T]
	vecs       sync.Pool // *Vec[T]
	dcscs      sync.Pool // *DCSC[T]
}

// NewScratchPool returns an empty arena.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// GetInts checks out an []int of length n (values unspecified).
func (p *ScratchPool) GetInts(n int) []int {
	if p != nil {
		p.mu.Lock()
		for k := len(p.ints) - 1; k >= 0; k-- {
			if cap(p.ints[k]) >= n {
				s := p.ints[k][:n]
				p.ints[k] = p.ints[len(p.ints)-1]
				p.ints = p.ints[:len(p.ints)-1]
				p.mu.Unlock()
				return s
			}
		}
		p.mu.Unlock()
	}
	return make([]int, n)
}

// PutInts returns a buffer checked out with GetInts.
func (p *ScratchPool) PutInts(s []int) {
	if p == nil || cap(s) == 0 {
		return
	}
	p.mu.Lock()
	p.ints = append(p.ints, s[:0])
	p.mu.Unlock()
}

// GetInt32s checks out an []int32 of length n (values unspecified).
func (p *ScratchPool) GetInt32s(n int) []int32 {
	if p != nil {
		p.mu.Lock()
		for k := len(p.int32s) - 1; k >= 0; k-- {
			if cap(p.int32s[k]) >= n {
				s := p.int32s[k][:n]
				p.int32s[k] = p.int32s[len(p.int32s)-1]
				p.int32s = p.int32s[:len(p.int32s)-1]
				p.mu.Unlock()
				return s
			}
		}
		p.mu.Unlock()
	}
	return make([]int32, n)
}

// PutInt32s returns a buffer checked out with GetInt32s.
func (p *ScratchPool) PutInt32s(s []int32) {
	if p == nil || cap(s) == 0 {
		return
	}
	p.mu.Lock()
	p.int32s = append(p.int32s, s[:0])
	p.mu.Unlock()
}

// GetInt64s checks out an []int64 of length n (values unspecified).
func (p *ScratchPool) GetInt64s(n int) []int64 {
	if p != nil {
		p.mu.Lock()
		for k := len(p.int64s) - 1; k >= 0; k-- {
			if cap(p.int64s[k]) >= n {
				s := p.int64s[k][:n]
				p.int64s[k] = p.int64s[len(p.int64s)-1]
				p.int64s = p.int64s[:len(p.int64s)-1]
				p.mu.Unlock()
				return s
			}
		}
		p.mu.Unlock()
	}
	return make([]int64, n)
}

// PutInt64s returns a buffer checked out with GetInt64s.
func (p *ScratchPool) PutInt64s(s []int64) {
	if p == nil || cap(s) == 0 {
		return
	}
	p.mu.Lock()
	p.int64s = append(p.int64s, s[:0])
	p.mu.Unlock()
}

// GetAtomicSPA checks out an atomic SPA over [0, n), reset and ready.
func GetAtomicSPA[T semiring.Number](p *ScratchPool, n int) *AtomicSPA[T] {
	if p != nil {
		if v := p.atomicSpas.Get(); v != nil {
			if s, ok := v.(*AtomicSPA[T]); ok {
				s.Grow(n)
				return s
			}
		}
	}
	return NewAtomicSPA[T](n)
}

// PutAtomicSPA resets s and returns it to the arena.
func PutAtomicSPA[T semiring.Number](p *ScratchPool, s *AtomicSPA[T]) {
	if p == nil || s == nil {
		return
	}
	s.Reset()
	p.atomicSpas.Put(s)
}

// GetSPA checks out a sequential SPA over [0, n), reset and ready.
func GetSPA[T semiring.Number](p *ScratchPool, n int) *SPA[T] {
	if p != nil {
		if v := p.spas.Get(); v != nil {
			if s, ok := v.(*SPA[T]); ok {
				s.Grow(n)
				return s
			}
		}
	}
	return NewSPA[T](n)
}

// PutSPA resets s and returns it to the arena.
func PutSPA[T semiring.Number](p *ScratchPool, s *SPA[T]) {
	if p == nil || s == nil {
		return
	}
	s.Reset()
	p.spas.Put(s)
}

// GetBucketSPA checks out a bucketed SPA reconfigured for (n, workers,
// buckets), with clean dense scratch and empty runs.
func GetBucketSPA[T semiring.Number](p *ScratchPool, n, workers, buckets int) *BucketSPA[T] {
	if p != nil {
		if v := p.buckets.Get(); v != nil {
			if s, ok := v.(*BucketSPA[T]); ok {
				s.Reconfigure(n, workers, buckets)
				return s
			}
		}
	}
	return NewBucketSPA[T](n, workers, buckets)
}

// PutBucketSPA returns a bucketed SPA to the arena. The SPA must be clean:
// MergeInto leaves it clean, so the normal use — scatter, merge, put — needs
// no extra reset.
func PutBucketSPA[T semiring.Number](p *ScratchPool, s *BucketSPA[T]) {
	if p == nil || s == nil {
		return
	}
	p.buckets.Put(s)
}

// GetVec checks out an empty sparse vector of capacity n whose Ind/Val
// backing arrays are reused across checkouts. The caller owns the vector; if
// it is scratch (not handed to user code), return it with PutVec so the next
// call is allocation-free.
func GetVec[T semiring.Number](p *ScratchPool, n int) *Vec[T] {
	if p != nil {
		if v := p.vecs.Get(); v != nil {
			if w, ok := v.(*Vec[T]); ok {
				w.N = n
				w.Ind = w.Ind[:0]
				w.Val = w.Val[:0]
				return w
			}
		}
	}
	return NewVec[T](n)
}

// PutVec returns a vector checked out with GetVec (or any vector whose
// backing arrays the caller is done with) to the arena.
func PutVec[T semiring.Number](p *ScratchPool, v *Vec[T]) {
	if p == nil || v == nil {
		return
	}
	v.Ind = v.Ind[:0]
	v.Val = v.Val[:0]
	p.vecs.Put(v)
}

// GetDCSC checks out an empty doubly-compressed block whose backing arrays
// are reused across checkouts; fill it with FromCSR. The caller owns it
// until PutDCSC.
func GetDCSC[T semiring.Number](p *ScratchPool) *DCSC[T] {
	if p != nil {
		if v := p.dcscs.Get(); v != nil {
			if d, ok := v.(*DCSC[T]); ok {
				return d
			}
		}
	}
	return &DCSC[T]{}
}

// PutDCSC returns a block checked out with GetDCSC to the arena.
func PutDCSC[T semiring.Number](p *ScratchPool, d *DCSC[T]) {
	if p == nil || d == nil {
		return
	}
	d.Rows = d.Rows[:0]
	d.RowPtr = d.RowPtr[:0]
	d.ColIdx = d.ColIdx[:0]
	d.Val = d.Val[:0]
	p.dcscs.Put(d)
}
