package sparse

import (
	"testing"
)

// Pooled checkouts must be indistinguishable from fresh allocations: correct
// length, clean state where the contract promises it, and safe on a nil pool.

func TestScratchPoolSliceRoundTrip(t *testing.T) {
	p := NewScratchPool()
	a := p.GetInts(100)
	if len(a) != 100 {
		t.Fatalf("GetInts(100) returned len %d", len(a))
	}
	for i := range a {
		a[i] = i
	}
	p.PutInts(a)
	// A smaller request must reuse the pooled buffer (same backing array).
	b := p.GetInts(50)
	if len(b) != 50 {
		t.Fatalf("GetInts(50) returned len %d", len(b))
	}
	if cap(b) < 100 {
		t.Fatalf("pooled buffer not reused: cap %d", cap(b))
	}
	// A larger request must fall through to a fresh allocation.
	p.PutInts(b)
	c := p.GetInts(500)
	if len(c) != 500 {
		t.Fatalf("GetInts(500) returned len %d", len(c))
	}
}

func TestScratchPoolNilSafe(t *testing.T) {
	var p *ScratchPool
	if got := p.GetInts(10); len(got) != 10 {
		t.Fatalf("nil pool GetInts: len %d", len(got))
	}
	p.PutInts(make([]int, 5))
	if got := p.GetInt32s(10); len(got) != 10 {
		t.Fatalf("nil pool GetInt32s: len %d", len(got))
	}
	if got := p.GetInt64s(10); len(got) != 10 {
		t.Fatalf("nil pool GetInt64s: len %d", len(got))
	}
	if s := GetSPA[int64](p, 10); s == nil || len(s.IsThere) != 10 {
		t.Fatal("nil pool GetSPA broken")
	}
	if s := GetAtomicSPA[int64](p, 10); s == nil {
		t.Fatal("nil pool GetAtomicSPA broken")
	}
	if s := GetBucketSPA[int64](p, 10, 2, 2); s == nil {
		t.Fatal("nil pool GetBucketSPA broken")
	}
	if v := GetVec[int64](p, 10); v == nil || v.N != 10 || len(v.Ind) != 0 {
		t.Fatal("nil pool GetVec broken")
	}
	PutSPA(p, NewSPA[int64](4))
	PutAtomicSPA(p, NewAtomicSPA[int64](4))
	PutBucketSPA(p, NewBucketSPA[int64](4, 1, 1))
	PutVec(p, NewVec[int64](4))
}

// TestScratchPoolSPAComesBackClean dirties a SPA, returns it, and verifies the
// next checkout observes the Reset invariant (all flags false) at both the
// same and a larger domain size.
func TestScratchPoolSPAComesBackClean(t *testing.T) {
	p := NewScratchPool()
	s := GetSPA[int64](p, 50)
	s.Scatter(7, 1, nil)
	s.Scatter(31, 2, nil)
	PutSPA(p, s)
	for _, n := range []int{50, 200} {
		s2 := GetSPA[int64](p, n)
		for i, f := range s2.IsThere {
			if f {
				t.Fatalf("n=%d: pooled SPA dirty at %d", n, i)
			}
		}
		if len(s2.IsThere) != n {
			t.Fatalf("n=%d: pooled SPA has domain %d", n, len(s2.IsThere))
		}
		PutSPA(p, s2)
	}
}

// TestScratchPoolBucketSPAReuseMatchesFresh runs the same scatter+merge on a
// pooled (previously used) BucketSPA and on a fresh one, at several
// configurations, and demands identical output — the MergeInto self-cleaning
// contract PutBucketSPA relies on.
func TestScratchPoolBucketSPAReuseMatchesFresh(t *testing.T) {
	p := NewScratchPool()
	run := func(s *BucketSPA[int64], n, workers int) ([]int, []int64) {
		for w := 0; w < workers; w++ {
			for k := w; k < 4*n/5; k += workers {
				s.Append(w, (k*7)%n, int64(k))
			}
		}
		ind, val, _ := s.Merge(nil, workers)
		return ind, val
	}
	configs := []struct{ n, workers, buckets int }{
		{64, 1, 1}, {64, 2, 4}, {1000, 4, 8}, {64, 2, 4}, // repeat to hit the pooled object
	}
	for ci, c := range configs {
		pooled := GetBucketSPA[int64](p, c.n, c.workers, c.buckets)
		gi, gv := run(pooled, c.n, c.workers)
		PutBucketSPA(p, pooled)
		fresh := NewBucketSPA[int64](c.n, c.workers, c.buckets)
		wi, wv := run(fresh, c.n, c.workers)
		if len(gi) != len(wi) {
			t.Fatalf("config %d: pooled emitted %d entries, fresh %d", ci, len(gi), len(wi))
		}
		for k := range gi {
			if gi[k] != wi[k] || gv[k] != wv[k] {
				t.Fatalf("config %d: pooled and fresh diverge at %d: (%d,%d) vs (%d,%d)",
					ci, k, gi[k], gv[k], wi[k], wv[k])
			}
		}
	}
}

// FuzzScratchPool drives an arbitrary interleaving of checkouts and returns
// across the three slice free-lists, checking the length contract and that a
// buffer is never live in two hands (each checkout is stamped and verified
// before return).
func FuzzScratchPool(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 255, 128, 7, 7, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		p := NewScratchPool()
		type held struct {
			ints  []int
			stamp int
		}
		var live []held
		stamp := 0
		for _, op := range ops {
			switch {
			case op < 128 || len(live) == 0: // checkout
				n := int(op%64) + 1
				s := p.GetInts(n)
				if len(s) != n {
					t.Fatalf("GetInts(%d) returned len %d", n, len(s))
				}
				stamp++
				for i := range s {
					s[i] = stamp
				}
				live = append(live, held{s, stamp})
			default: // return the oldest held buffer
				h := live[0]
				live = live[1:]
				for i, v := range h.ints {
					if v != h.stamp {
						t.Fatalf("buffer aliased while held: [%d]=%d, want stamp %d", i, v, h.stamp)
					}
				}
				p.PutInts(h.ints)
			}
		}
	})
}
