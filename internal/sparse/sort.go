package sparse

import (
	"sort"
)

// MergeSortInts sorts xs ascending with a parallel merge sort using up to
// workers goroutines, matching the "parallel merge sort available in Chapel"
// the paper's SpMSpV uses for its index-sorting step. Stats about the work
// performed (comparisons, element moves, recursion depth) are returned so the
// performance model can charge it faithfully.
func MergeSortInts(xs []int, workers int) SortStats {
	if workers < 1 {
		workers = 1
	}
	if len(xs) < 2 {
		return SortStats{}
	}
	buf := make([]int, len(xs))
	sem := make(chan struct{}, workers)
	return parallelMergeSort(xs, buf, sem, 0)
}

// SortStats records the work a sorting call performed, for cost accounting.
type SortStats struct {
	Comparisons int64
	Moves       int64
	Depth       int // recursion depth of the largest chain
}

func (s SortStats) add(o SortStats) SortStats {
	d := s.Depth
	if o.Depth > d {
		d = o.Depth
	}
	return SortStats{
		Comparisons: s.Comparisons + o.Comparisons,
		Moves:       s.Moves + o.Moves,
		Depth:       d + 1,
	}
}

const mergeSortCutoff = 2048

// parallelMergeSort sorts xs in place using buf as scratch. The left half is
// sorted concurrently when a worker slot is free; the result is reported on a
// per-spawn channel so nested levels synchronize only with their own child.
func parallelMergeSort(xs, buf []int, sem chan struct{}, depth int) SortStats {
	n := len(xs)
	if n <= mergeSortCutoff {
		sort.Ints(xs)
		// sort.Ints is introsort: ~n log n comparisons, ~n moves per level.
		c := int64(n) * log2int64(n)
		return SortStats{Comparisons: c, Moves: int64(n), Depth: depth}
	}
	mid := n / 2
	var leftStats, rightStats SortStats
	select {
	case sem <- struct{}{}:
		done := make(chan SortStats, 1)
		go func() {
			done <- parallelMergeSort(xs[:mid], buf[:mid], sem, depth+1)
			<-sem
		}()
		rightStats = parallelMergeSort(xs[mid:], buf[mid:], sem, depth+1)
		leftStats = <-done
	default:
		leftStats = parallelMergeSort(xs[:mid], buf[:mid], sem, depth+1)
		rightStats = parallelMergeSort(xs[mid:], buf[mid:], sem, depth+1)
	}
	m := mergeInts(xs, mid, buf)
	st := leftStats.add(rightStats)
	st.Comparisons += m.Comparisons
	st.Moves += m.Moves
	return st
}

// mergeInts merges the sorted halves xs[:mid] and xs[mid:] using buf.
func mergeInts(xs []int, mid int, buf []int) SortStats {
	copy(buf, xs[:mid])
	left, right := buf[:mid], xs[mid:]
	i, j, k := 0, 0, 0
	var comp int64
	for i < len(left) && j < len(right) {
		comp++
		if left[i] <= right[j] {
			xs[k] = left[i]
			i++
		} else {
			xs[k] = right[j]
			j++
		}
		k++
	}
	for i < len(left) {
		xs[k] = left[i]
		i++
		k++
	}
	return SortStats{Comparisons: comp, Moves: int64(len(xs))}
}

// RadixSortInts sorts non-negative xs ascending with an LSD radix sort
// (8-bit digits), the "less expensive integer sorting algorithm (e.g., radix
// sort)" the paper expects to reduce the SpMSpV sorting cost. Returns the
// number of counting passes performed, for cost accounting.
func RadixSortInts(xs []int) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	buf := make([]int, n)
	src, dst := xs, buf
	passes := 0
	var count [256]int
	for shift := uint(0); maxV>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, x := range src {
			count[(x>>shift)&0xFF]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, x := range src {
			d := (x >> shift) & 0xFF
			dst[count[d]] = x
			count[d]++
		}
		src, dst = dst, src
		passes++
	}
	if passes%2 == 1 {
		copy(xs, src)
	}
	return passes
}

// log2int64 returns ceil(log2(n)) for n >= 1 (0 for n <= 1), as int64.
func log2int64(n int) int64 {
	var l int64
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// RadixSortInts32 sorts non-negative int32 values ascending with the same LSD
// radix approach as RadixSortInts; used for compacted position buffers.
func RadixSortInts32(xs []int32) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	buf := make([]int32, n)
	src, dst := xs, buf
	passes := 0
	var count [256]int
	for shift := uint(0); maxV>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, x := range src {
			count[(x>>shift)&0xFF]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, x := range src {
			d := (x >> shift) & 0xFF
			dst[count[d]] = x
			count[d]++
		}
		src, dst = dst, src
		passes++
	}
	if passes%2 == 1 {
		copy(xs, src)
	}
	return passes
}
