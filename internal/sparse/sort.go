package sparse

import (
	"sort"
	"sync"
)

// sortScratch pools the temporary buffers of the sorting routines so that
// steady-state sorting allocates nothing: merge buffers, radix ping-pong
// buffers, and the merge-sort worker semaphores. Package-global because the
// sorts are free functions; contents are value-irrelevant (every byte is
// overwritten before being read), so pooling cannot change results.
var sortScratch struct {
	mu     sync.Mutex
	ints   [][]int
	int32s [][]int32
	sems   []chan struct{}
}

func getSortInts(n int) []int {
	sortScratch.mu.Lock()
	for k := len(sortScratch.ints) - 1; k >= 0; k-- {
		if cap(sortScratch.ints[k]) >= n {
			s := sortScratch.ints[k][:n]
			sortScratch.ints[k] = sortScratch.ints[len(sortScratch.ints)-1]
			sortScratch.ints = sortScratch.ints[:len(sortScratch.ints)-1]
			sortScratch.mu.Unlock()
			return s
		}
	}
	sortScratch.mu.Unlock()
	return make([]int, n)
}

func putSortInts(s []int) {
	sortScratch.mu.Lock()
	sortScratch.ints = append(sortScratch.ints, s[:0])
	sortScratch.mu.Unlock()
}

func getSortInt32s(n int) []int32 {
	sortScratch.mu.Lock()
	for k := len(sortScratch.int32s) - 1; k >= 0; k-- {
		if cap(sortScratch.int32s[k]) >= n {
			s := sortScratch.int32s[k][:n]
			sortScratch.int32s[k] = sortScratch.int32s[len(sortScratch.int32s)-1]
			sortScratch.int32s = sortScratch.int32s[:len(sortScratch.int32s)-1]
			sortScratch.mu.Unlock()
			return s
		}
	}
	sortScratch.mu.Unlock()
	return make([]int32, n)
}

func putSortInt32s(s []int32) {
	sortScratch.mu.Lock()
	sortScratch.int32s = append(sortScratch.int32s, s[:0])
	sortScratch.mu.Unlock()
}

func getSortSem(workers int) chan struct{} {
	sortScratch.mu.Lock()
	for k := len(sortScratch.sems) - 1; k >= 0; k-- {
		if cap(sortScratch.sems[k]) >= workers {
			c := sortScratch.sems[k]
			sortScratch.sems[k] = sortScratch.sems[len(sortScratch.sems)-1]
			sortScratch.sems = sortScratch.sems[:len(sortScratch.sems)-1]
			sortScratch.mu.Unlock()
			return c
		}
	}
	sortScratch.mu.Unlock()
	return make(chan struct{}, workers)
}

func putSortSem(c chan struct{}) {
	sortScratch.mu.Lock()
	sortScratch.sems = append(sortScratch.sems, c)
	sortScratch.mu.Unlock()
}

// MergeSortInts sorts xs ascending with a parallel merge sort using up to
// workers goroutines, matching the "parallel merge sort available in Chapel"
// the paper's SpMSpV uses for its index-sorting step. Stats about the work
// performed (comparisons, element moves, recursion depth) are returned so the
// performance model can charge it faithfully.
func MergeSortInts(xs []int, workers int) SortStats {
	if workers < 1 {
		workers = 1
	}
	if len(xs) < 2 {
		return SortStats{}
	}
	if len(xs) <= mergeSortCutoff {
		// The recursion would immediately hit the leaf sort; skip the scratch
		// checkout entirely.
		return parallelMergeSort(xs, nil, nil, 0)
	}
	buf := getSortInts(len(xs))
	sem := getSortSem(workers)
	st := parallelMergeSort(xs, buf, sem, 0)
	putSortInts(buf)
	// A pooled semaphore must come back empty; parallelMergeSort's spawns
	// release their slot before reporting, so it is.
	putSortSem(sem)
	return st
}

// SortStats records the work a sorting call performed, for cost accounting.
type SortStats struct {
	Comparisons int64
	Moves       int64
	Depth       int // recursion depth of the largest chain
}

func (s SortStats) add(o SortStats) SortStats {
	d := s.Depth
	if o.Depth > d {
		d = o.Depth
	}
	return SortStats{
		Comparisons: s.Comparisons + o.Comparisons,
		Moves:       s.Moves + o.Moves,
		Depth:       d + 1,
	}
}

const mergeSortCutoff = 2048

// parallelMergeSort sorts xs in place using buf as scratch. The left half is
// sorted concurrently when a worker slot is free; the result is reported on a
// per-spawn channel so nested levels synchronize only with their own child.
func parallelMergeSort(xs, buf []int, sem chan struct{}, depth int) SortStats {
	n := len(xs)
	if n <= mergeSortCutoff {
		sort.Ints(xs)
		// sort.Ints is introsort: ~n log n comparisons, ~n moves per level.
		c := int64(n) * log2int64(n)
		return SortStats{Comparisons: c, Moves: int64(n), Depth: depth}
	}
	mid := n / 2
	var leftStats, rightStats SortStats
	select {
	case sem <- struct{}{}:
		done := make(chan SortStats, 1)
		go func() {
			done <- parallelMergeSort(xs[:mid], buf[:mid], sem, depth+1)
			<-sem
		}()
		rightStats = parallelMergeSort(xs[mid:], buf[mid:], sem, depth+1)
		leftStats = <-done
	default:
		leftStats = parallelMergeSort(xs[:mid], buf[:mid], sem, depth+1)
		rightStats = parallelMergeSort(xs[mid:], buf[mid:], sem, depth+1)
	}
	m := mergeInts(xs, mid, buf)
	st := leftStats.add(rightStats)
	st.Comparisons += m.Comparisons
	st.Moves += m.Moves
	return st
}

// mergeInts merges the sorted halves xs[:mid] and xs[mid:] using buf.
func mergeInts(xs []int, mid int, buf []int) SortStats {
	copy(buf, xs[:mid])
	left, right := buf[:mid], xs[mid:]
	i, j, k := 0, 0, 0
	var comp int64
	for i < len(left) && j < len(right) {
		comp++
		if left[i] <= right[j] {
			xs[k] = left[i]
			i++
		} else {
			xs[k] = right[j]
			j++
		}
		k++
	}
	for i < len(left) {
		xs[k] = left[i]
		i++
		k++
	}
	return SortStats{Comparisons: comp, Moves: int64(len(xs))}
}

// RadixSortInts sorts non-negative xs ascending with an LSD radix sort
// (8-bit digits), the "less expensive integer sorting algorithm (e.g., radix
// sort)" the paper expects to reduce the SpMSpV sorting cost. Returns the
// number of counting passes performed, for cost accounting.
func RadixSortInts(xs []int) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	buf := getSortInts(n)
	src, dst := xs, buf
	passes := 0
	var count [256]int
	for shift := uint(0); maxV>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, x := range src {
			count[(x>>shift)&0xFF]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, x := range src {
			d := (x >> shift) & 0xFF
			dst[count[d]] = x
			count[d]++
		}
		src, dst = dst, src
		passes++
	}
	if passes%2 == 1 {
		copy(xs, src)
	}
	putSortInts(buf)
	return passes
}

// log2int64 returns ceil(log2(n)) for n >= 1 (0 for n <= 1), as int64.
func log2int64(n int) int64 {
	var l int64
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// RadixSortInts32 sorts non-negative int32 values ascending with the same LSD
// radix approach as RadixSortInts; used for compacted position buffers.
func RadixSortInts32(xs []int32) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	buf := getSortInt32s(n)
	src, dst := xs, buf
	passes := 0
	var count [256]int
	for shift := uint(0); maxV>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, x := range src {
			count[(x>>shift)&0xFF]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, x := range src {
			d := (x >> shift) & 0xFF
			dst[count[d]] = x
			count[d]++
		}
		src, dst = dst, src
		passes++
	}
	if passes%2 == 1 {
		copy(xs, src)
	}
	putSortInt32s(buf)
	return passes
}
