package sparse

// Kernel-level ground truth for the SpMSpV engine ablation (ablengine): the
// real wall-clock cost of producing sorted, duplicate-free output indices via
// merge sort, radix sort (int and int32), and the sort-free bucket
// scatter+merge+emit path, on the same index stream. RadixSortInts32 is the
// variant eWiseMult's survivor compaction uses (internal/core/ewisemult.go);
// it is benchmarked here alongside the others so the int32 specialization has
// a measured justification too.

import (
	"math/rand"
	"testing"
)

const (
	benchDomain  = 1 << 20 // index domain [0, n)
	benchEntries = 1 << 17 // entries in the stream (~keys to sort)
)

func benchIndexStream() ([]int, []int32) {
	r := rand.New(rand.NewSource(42))
	xs := make([]int, benchEntries)
	xs32 := make([]int32, benchEntries)
	for k := range xs {
		xs[k] = r.Intn(benchDomain)
		xs32[k] = int32(xs[k])
	}
	return xs, xs32
}

func BenchmarkSpMSpVKernelMergeSort(b *testing.B) {
	base, _ := benchIndexStream()
	buf := make([]int, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		MergeSortInts(buf, 4)
	}
}

func BenchmarkSpMSpVKernelRadixSort(b *testing.B) {
	base, _ := benchIndexStream()
	buf := make([]int, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		RadixSortInts(buf)
	}
}

func BenchmarkSpMSpVKernelRadixSort32(b *testing.B) {
	_, base := benchIndexStream()
	buf := make([]int32, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		RadixSortInts32(buf)
	}
}

// BenchmarkSpMSpVKernelBucketEmit measures the full sort-free alternative:
// scatter every entry into worker-private bucket runs, merge, and emit in
// order. This does strictly more than the sorts above (it also deduplicates
// and carries values), yet is the drop-in replacement for the Sort step.
func BenchmarkSpMSpVKernelBucketEmit(b *testing.B) {
	base, _ := benchIndexStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewBucketSPA[int64](benchDomain, 4, 64)
		for w := 0; w < 4; w++ {
			lo, hi := w*len(base)/4, (w+1)*len(base)/4
			for k := lo; k < hi; k++ {
				s.Append(w, base[k], int64(k))
			}
		}
		ind, _, _ := s.Merge(nil, 4)
		if len(ind) == 0 {
			b.Fatal("empty emission")
		}
	}
}
