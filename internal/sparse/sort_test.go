package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMergeSortInts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 2048, 2049, 10000, 100000} {
		for _, workers := range []int{1, 2, 4, 8} {
			rng := rand.New(rand.NewSource(int64(n + workers)))
			xs := make([]int, n)
			for i := range xs {
				xs[i] = rng.Intn(1 << 20)
			}
			want := append([]int(nil), xs...)
			sort.Ints(want)
			st := MergeSortInts(xs, workers)
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("n=%d workers=%d: mismatch at %d", n, workers, i)
				}
			}
			if n >= 2 && st.Comparisons == 0 {
				t.Errorf("n=%d: no comparisons recorded", n)
			}
		}
	}
}

func TestMergeSortAlreadySortedAndReverse(t *testing.T) {
	n := 50000
	asc := make([]int, n)
	desc := make([]int, n)
	for i := range asc {
		asc[i] = i
		desc[i] = n - i
	}
	MergeSortInts(asc, 4)
	MergeSortInts(desc, 4)
	if !sort.IntsAreSorted(asc) || !sort.IntsAreSorted(desc) {
		t.Fatal("pre-sorted or reversed input not handled")
	}
}

func TestMergeSortDuplicates(t *testing.T) {
	xs := make([]int, 30000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Intn(7) // heavy duplication
	}
	MergeSortInts(xs, 4)
	if !sort.IntsAreSorted(xs) {
		t.Fatal("duplicates not handled")
	}
}

func TestMergeSortQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		MergeSortInts(xs, 3)
		for i := range xs {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSortInts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 255, 256, 257, 65536, 100000} {
		rng := rand.New(rand.NewSource(int64(n)))
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1 << 30)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		passes := RadixSortInts(xs)
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
		if n >= 2 && passes == 0 {
			t.Errorf("n=%d: no passes recorded", n)
		}
	}
}

func TestRadixSortSmallValues(t *testing.T) {
	// Values that fit one digit should take exactly one pass.
	xs := []int{5, 3, 200, 0, 255, 17}
	passes := RadixSortInts(xs)
	if !sort.IntsAreSorted(xs) {
		t.Fatal("not sorted")
	}
	if passes != 1 {
		t.Errorf("passes = %d, want 1", passes)
	}
	// Larger values take more passes (odd pass count exercises the copy-back).
	ys := []int{1 << 16, 3, 70000, 255}
	p2 := RadixSortInts(ys)
	if !sort.IntsAreSorted(ys) {
		t.Fatal("not sorted (multi-pass)")
	}
	if p2 != 3 {
		t.Errorf("passes = %d, want 3", p2)
	}
}

func TestRadixSortAllEqual(t *testing.T) {
	xs := []int{4, 4, 4, 4}
	RadixSortInts(xs)
	if !sort.IntsAreSorted(xs) {
		t.Fatal("all-equal broke radix sort")
	}
	zeros := []int{0, 0, 0}
	RadixSortInts(zeros) // max=0: zero passes, already sorted
	if !sort.IntsAreSorted(zeros) {
		t.Fatal("all-zero broke radix sort")
	}
}

func TestRadixMatchesMergeQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, r := range raw {
			a[i] = int(r)
			b[i] = int(r)
		}
		RadixSortInts(a)
		MergeSortInts(b, 2)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStatsAccumulate(t *testing.T) {
	a := SortStats{Comparisons: 10, Moves: 5, Depth: 2}
	b := SortStats{Comparisons: 3, Moves: 7, Depth: 4}
	c := a.add(b)
	if c.Comparisons != 13 || c.Moves != 12 || c.Depth != 5 {
		t.Fatalf("add wrong: %+v", c)
	}
}

func TestLog2Int64(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2int64(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
