package sparse

import (
	"sync/atomic"

	"repro/internal/semiring"
)

// SPA is the sparse accumulator of Gilbert, Moler and Schreiber: a dense
// vector of values, a dense vector of Booleans (IsThere) marking which
// entries have been initialized, and a list of indices (NzInds) for which
// IsThere has been set. It supports O(1) scatter/accumulate and O(nnz)
// harvest of the result.
//
// This is the sequential variant; AtomicSPA below is the concurrent variant
// used by the paper's shared-memory SpMSpV, where IsThere is made atomic
// because multiple threads can visit the same column.
type SPA[T semiring.Number] struct {
	Val     []T
	IsThere []bool
	NzInds  []int
}

// NewSPA returns a SPA over index domain [0, n).
func NewSPA[T semiring.Number](n int) *SPA[T] {
	return &SPA[T]{
		Val:     make([]T, n),
		IsThere: make([]bool, n),
		NzInds:  make([]int, 0, 64),
	}
}

// Scatter accumulates v into position i with op, initializing the position
// on first touch.
func (s *SPA[T]) Scatter(i int, v T, op semiring.BinaryOp[T]) {
	if !s.IsThere[i] {
		s.IsThere[i] = true
		s.Val[i] = v
		s.NzInds = append(s.NzInds, i)
		return
	}
	s.Val[i] = op(s.Val[i], v)
}

// ScatterFirst records v at position i only if the position was untouched,
// mirroring the paper's "only keeping the first index" logic.
func (s *SPA[T]) ScatterFirst(i int, v T) {
	if !s.IsThere[i] {
		s.IsThere[i] = true
		s.Val[i] = v
		s.NzInds = append(s.NzInds, i)
	}
}

// NNZ returns the number of touched positions.
func (s *SPA[T]) NNZ() int { return len(s.NzInds) }

// Gather produces the sparse result vector (capacity n = len(Val)) with
// indices sorted, then resets the SPA for reuse. Sorting uses the supplied
// sort function so callers can choose merge sort vs radix sort (the paper's
// ablation).
func (s *SPA[T]) Gather(sortFn func([]int)) *Vec[T] {
	sortFn(s.NzInds)
	out := &Vec[T]{
		N:   len(s.Val),
		Ind: append([]int(nil), s.NzInds...),
		Val: make([]T, len(s.NzInds)),
	}
	for k, i := range out.Ind {
		out.Val[k] = s.Val[i]
	}
	s.Reset()
	return out
}

// Reset clears the touched positions in O(nnz) so the SPA can be reused
// without reallocating its dense arrays.
func (s *SPA[T]) Reset() {
	for _, i := range s.NzInds {
		s.IsThere[i] = false
	}
	s.NzInds = s.NzInds[:0]
}

// Grow resizes a reset SPA to index domain [0, n), reusing the dense arrays
// when their capacity suffices. The SPA must be reset (all IsThere false
// within capacity) — the invariant Reset maintains — so no clearing pass is
// needed.
func (s *SPA[T]) Grow(n int) {
	if cap(s.Val) < n {
		s.Val = make([]T, n)
		s.IsThere = make([]bool, n)
	} else {
		s.Val = s.Val[:n]
		s.IsThere = s.IsThere[:n]
	}
	s.NzInds = s.NzInds[:0]
}

// AtomicSPA is the concurrent sparse accumulator the paper's shared-memory
// SpMSpV uses: IsThere is an atomic Boolean vector so that threads claiming
// the same column race safely, and the nzinds list is compacted through an
// atomic fetch-and-add cursor.
type AtomicSPA[T semiring.Number] struct {
	Val     []T
	LocalY  []int64 // the paper's "localy": row id that discovered the column
	isThere []atomic.Bool
	NzInds  []int
	Cursor  atomic.Int64
}

// NewAtomicSPA returns an atomic SPA over index domain [0, n).
func NewAtomicSPA[T semiring.Number](n int) *AtomicSPA[T] {
	return &AtomicSPA[T]{
		Val:     make([]T, n),
		LocalY:  make([]int64, n),
		isThere: make([]atomic.Bool, n),
		NzInds:  make([]int, n),
	}
}

// TryClaim attempts to claim position i for the calling thread. Exactly one
// caller per position wins; the winner's slot in the compacted index list is
// reserved with a fetch-and-add, exactly as Listing 7 of the paper does with
// `nzinds[k.fetchAdd(1)] = colid`.
func (s *AtomicSPA[T]) TryClaim(i int) bool {
	if s.isThere[i].Load() {
		return false
	}
	if !s.isThere[i].CompareAndSwap(false, true) {
		return false
	}
	k := s.Cursor.Add(1) - 1
	s.NzInds[k] = i
	return true
}

// Claimed reports whether position i has been claimed.
func (s *AtomicSPA[T]) Claimed(i int) bool { return s.isThere[i].Load() }

// CompactInds returns the claimed indices (unsorted; length = claim count),
// mirroring the paper's `nzinds.remove(k.read(), ncol-k.read())`.
func (s *AtomicSPA[T]) CompactInds() []int {
	return s.NzInds[:s.Cursor.Load()]
}

// Reset clears all claimed positions in O(claimed) for reuse.
func (s *AtomicSPA[T]) Reset() {
	for _, i := range s.CompactInds() {
		s.isThere[i].Store(false)
	}
	s.Cursor.Store(0)
}

// Grow resizes a reset atomic SPA to index domain [0, n), reusing the dense
// arrays when their capacity suffices. Like SPA.Grow it relies on the Reset
// invariant (every flag within capacity is false), so shrinking and
// re-growing never exposes stale claims.
func (s *AtomicSPA[T]) Grow(n int) {
	if cap(s.Val) < n {
		s.Val = make([]T, n)
		s.LocalY = make([]int64, n)
		s.isThere = make([]atomic.Bool, n)
		s.NzInds = make([]int, n)
	} else {
		s.Val = s.Val[:n]
		s.LocalY = s.LocalY[:n]
		s.isThere = s.isThere[:n]
		s.NzInds = s.NzInds[:n]
	}
	s.Cursor.Store(0)
}
