package sparse

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/semiring"
)

func TestSPAScatterGather(t *testing.T) {
	s := NewSPA[int](10)
	s.Scatter(3, 5, semiring.Plus[int])
	s.Scatter(7, 1, semiring.Plus[int])
	s.Scatter(3, 2, semiring.Plus[int]) // accumulate
	if s.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", s.NNZ())
	}
	v := s.Gather(func(xs []int) { sort.Ints(xs) })
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if x, _ := v.Get(3); x != 7 {
		t.Errorf("accumulated value = %d, want 7", x)
	}
	if x, _ := v.Get(7); x != 1 {
		t.Errorf("value = %d, want 1", x)
	}
	// Gather resets the SPA.
	if s.NNZ() != 0 {
		t.Fatal("gather did not reset")
	}
	s.Scatter(1, 4, semiring.Plus[int])
	v2 := s.Gather(func(xs []int) { sort.Ints(xs) })
	if v2.NNZ() != 1 {
		t.Fatalf("reuse after reset broken: nnz=%d", v2.NNZ())
	}
	if x, _ := v2.Get(1); x != 4 {
		t.Fatal("stale value after reset")
	}
}

func TestSPAScatterFirst(t *testing.T) {
	s := NewSPA[int](5)
	s.ScatterFirst(2, 10)
	s.ScatterFirst(2, 99) // ignored: first wins
	v := s.Gather(func(xs []int) { sort.Ints(xs) })
	if x, _ := v.Get(2); x != 10 {
		t.Errorf("first-wins value = %d, want 10", x)
	}
}

func TestSPAMinAccumulate(t *testing.T) {
	s := NewSPA[int64](4)
	s.Scatter(0, 9, semiring.Min[int64])
	s.Scatter(0, 3, semiring.Min[int64])
	s.Scatter(0, 7, semiring.Min[int64])
	v := s.Gather(func(xs []int) { sort.Ints(xs) })
	if x, _ := v.Get(0); x != 3 {
		t.Errorf("min accumulate = %d, want 3", x)
	}
}

func TestAtomicSPASequential(t *testing.T) {
	s := NewAtomicSPA[int](8)
	if !s.TryClaim(3) {
		t.Fatal("first claim failed")
	}
	if s.TryClaim(3) {
		t.Fatal("second claim of same index succeeded")
	}
	if !s.Claimed(3) || s.Claimed(4) {
		t.Fatal("Claimed wrong")
	}
	if !s.TryClaim(5) {
		t.Fatal("claim of fresh index failed")
	}
	inds := s.CompactInds()
	if len(inds) != 2 {
		t.Fatalf("compact count = %d, want 2", len(inds))
	}
	sort.Ints(inds)
	if inds[0] != 3 || inds[1] != 5 {
		t.Fatalf("compact inds = %v", inds)
	}
	s.Reset()
	if s.Claimed(3) || len(s.CompactInds()) != 0 {
		t.Fatal("reset incomplete")
	}
	if !s.TryClaim(3) {
		t.Fatal("claim after reset failed")
	}
}

func TestAtomicSPAConcurrent(t *testing.T) {
	// Many goroutines hammer overlapping index ranges; every index must be
	// claimed exactly once and the compacted list must be a permutation of
	// the claimed set. Run with -race to validate the synchronization.
	n := 1 << 12
	s := NewAtomicSPA[int](n)
	workers := 8
	var wg sync.WaitGroup
	claims := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				idx := (i*7 + w) % n // overlapping strides
				if s.TryClaim(idx) {
					claims[w] = append(claims[w], idx)
				}
			}
		}(w)
	}
	wg.Wait()
	totalClaims := 0
	seen := make([]bool, n)
	for _, c := range claims {
		totalClaims += len(c)
		for _, i := range c {
			if seen[i] {
				t.Fatalf("index %d claimed twice", i)
			}
			seen[i] = true
		}
	}
	inds := append([]int(nil), s.CompactInds()...)
	if len(inds) != totalClaims {
		t.Fatalf("compacted %d inds, but %d claims succeeded", len(inds), totalClaims)
	}
	sort.Ints(inds)
	for k := 1; k < len(inds); k++ {
		if inds[k] == inds[k-1] {
			t.Fatalf("duplicate in compacted list: %d", inds[k])
		}
	}
}

func TestSPAGatherWithRadix(t *testing.T) {
	s := NewSPA[int](100)
	for _, i := range []int{42, 7, 99, 0, 55} {
		s.Scatter(i, i*2, semiring.Plus[int])
	}
	v := s.Gather(func(xs []int) { RadixSortInts(xs) })
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 5 {
		t.Fatal("nnz wrong")
	}
	for _, i := range []int{0, 7, 42, 55, 99} {
		if x, ok := v.Get(i); !ok || x != i*2 {
			t.Fatalf("value at %d = %d,%v", i, x, ok)
		}
	}
}
