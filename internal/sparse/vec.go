// Package sparse provides the local (single-locale) sparse data structures of
// the library: CSR matrices, sparse vectors with sorted index lists, dense
// vectors, COO builders, the sparse accumulator (SPA), parallel sorting
// routines, and random workload generators.
//
// The formats mirror the paper exactly: a CSR matrix keeps the column ids of
// nonzeros within each row sorted; a sparse vector keeps its indices sorted in
// an array, so random access by index costs O(log nnz) — the cost the paper's
// Assign1 pays — while ordered iteration costs O(nnz).
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// Vec is a sparse vector of capacity N: a sorted list of indices paired with
// values. nnz(x) = len(Ind) <= N. The format is space efficient, requiring
// O(nnz) storage.
type Vec[T semiring.Number] struct {
	N   int   // capacity (logical length of the vector)
	Ind []int // sorted, distinct indices of stored elements
	Val []T   // Val[k] is the value stored at index Ind[k]
}

// NewVec returns an empty sparse vector of capacity n.
func NewVec[T semiring.Number](n int) *Vec[T] {
	return &Vec[T]{N: n}
}

// VecOf builds a sparse vector from parallel index/value slices. The indices
// must be distinct; they are sorted (with values carried along) if necessary.
func VecOf[T semiring.Number](n int, ind []int, val []T) (*Vec[T], error) {
	if len(ind) != len(val) {
		return nil, fmt.Errorf("sparse: VecOf: %d indices but %d values", len(ind), len(val))
	}
	v := &Vec[T]{N: n, Ind: append([]int(nil), ind...), Val: append([]T(nil), val...)}
	if !sort.IntsAreSorted(v.Ind) {
		sortPairs(v.Ind, v.Val)
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// sortPairs sorts ind ascending, permuting val identically.
func sortPairs[T any](ind []int, val []T) {
	perm := make([]int, len(ind))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return ind[perm[a]] < ind[perm[b]] })
	indCopy := append([]int(nil), ind...)
	valCopy := append([]T(nil), val...)
	for i, p := range perm {
		ind[i] = indCopy[p]
		val[i] = valCopy[p]
	}
}

// NNZ returns the number of stored elements.
func (v *Vec[T]) NNZ() int { return len(v.Ind) }

// Capacity returns the logical length N of the vector.
func (v *Vec[T]) Capacity() int { return v.N }

// Density returns nnz(x)/capacity(x), the f of the paper.
func (v *Vec[T]) Density() float64 {
	if v.N == 0 {
		return 0
	}
	return float64(len(v.Ind)) / float64(v.N)
}

// Get returns the value at index i and whether it is stored. It uses binary
// search over the sorted index list: O(log nnz), the cost that makes the
// paper's Assign1 an order of magnitude slower than Assign2.
func (v *Vec[T]) Get(i int) (T, bool) {
	k := sort.SearchInts(v.Ind, i)
	if k < len(v.Ind) && v.Ind[k] == i {
		return v.Val[k], true
	}
	var zero T
	return zero, false
}

// Set stores value x at index i, inserting if absent. Insertion in the middle
// is O(nnz); Set exists for construction and tests, not for inner loops.
func (v *Vec[T]) Set(i int, x T) error {
	if i < 0 || i >= v.N {
		return fmt.Errorf("sparse: Vec.Set: index %d out of range [0,%d)", i, v.N)
	}
	k := sort.SearchInts(v.Ind, i)
	if k < len(v.Ind) && v.Ind[k] == i {
		v.Val[k] = x
		return nil
	}
	v.Ind = append(v.Ind, 0)
	v.Val = append(v.Val, x)
	copy(v.Ind[k+1:], v.Ind[k:])
	copy(v.Val[k+1:], v.Val[k:])
	v.Ind[k] = i
	v.Val[k] = x
	return nil
}

// Clear removes all stored elements, keeping the capacity.
func (v *Vec[T]) Clear() {
	v.Ind = v.Ind[:0]
	v.Val = v.Val[:0]
}

// Clone returns a deep copy.
func (v *Vec[T]) Clone() *Vec[T] {
	return &Vec[T]{
		N:   v.N,
		Ind: append([]int(nil), v.Ind...),
		Val: append([]T(nil), v.Val...),
	}
}

// Equal reports whether v and w have the same capacity, pattern, and values.
func (v *Vec[T]) Equal(w *Vec[T]) bool {
	if v.N != w.N || len(v.Ind) != len(w.Ind) {
		return false
	}
	for k := range v.Ind {
		if v.Ind[k] != w.Ind[k] || v.Val[k] != w.Val[k] {
			return false
		}
	}
	return true
}

// Validate checks the representation invariants: indices sorted, distinct and
// within [0, N), and len(Ind) == len(Val).
func (v *Vec[T]) Validate() error {
	if len(v.Ind) != len(v.Val) {
		return fmt.Errorf("sparse: vec: %d indices but %d values", len(v.Ind), len(v.Val))
	}
	for k, i := range v.Ind {
		if i < 0 || i >= v.N {
			return fmt.Errorf("sparse: vec: index %d out of range [0,%d)", i, v.N)
		}
		if k > 0 && v.Ind[k-1] >= i {
			return fmt.Errorf("sparse: vec: indices not strictly increasing at position %d (%d >= %d)",
				k, v.Ind[k-1], i)
		}
	}
	return nil
}

// ToDense scatters the vector into a dense slice of length N, with absent
// positions holding fill.
func (v *Vec[T]) ToDense(fill T) []T {
	d := make([]T, v.N)
	if fill != 0 {
		for i := range d {
			d[i] = fill
		}
	}
	for k, i := range v.Ind {
		d[i] = v.Val[k]
	}
	return d
}

// VecFromDense gathers the entries of d that differ from fill into a sparse
// vector of capacity len(d).
func VecFromDense[T semiring.Number](d []T, fill T) *Vec[T] {
	v := NewVec[T](len(d))
	for i, x := range d {
		if x != fill {
			v.Ind = append(v.Ind, i)
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// String renders small vectors for debugging.
func (v *Vec[T]) String() string {
	if len(v.Ind) > 16 {
		return fmt.Sprintf("Vec{n=%d nnz=%d}", v.N, len(v.Ind))
	}
	s := fmt.Sprintf("Vec{n=%d", v.N)
	for k, i := range v.Ind {
		s += fmt.Sprintf(" %d:%v", i, v.Val[k])
	}
	return s + "}"
}

// Dense is a dense vector: every one of its N positions holds a value.
type Dense[T semiring.Number] struct {
	Data []T
}

// NewDense returns a dense vector of length n, zero-filled.
func NewDense[T semiring.Number](n int) *Dense[T] {
	return &Dense[T]{Data: make([]T, n)}
}

// NewDenseFill returns a dense vector of length n with every position = fill.
func NewDenseFill[T semiring.Number](n int, fill T) *Dense[T] {
	d := &Dense[T]{Data: make([]T, n)}
	if fill != 0 {
		for i := range d.Data {
			d.Data[i] = fill
		}
	}
	return d
}

// Len returns the length of the vector.
func (d *Dense[T]) Len() int { return len(d.Data) }

// Get returns the value at index i.
func (d *Dense[T]) Get(i int) T { return d.Data[i] }

// Set stores x at index i.
func (d *Dense[T]) Set(i int, x T) { d.Data[i] = x }

// Clone returns a deep copy.
func (d *Dense[T]) Clone() *Dense[T] {
	return &Dense[T]{Data: append([]T(nil), d.Data...)}
}

// Equal reports elementwise equality.
func (d *Dense[T]) Equal(e *Dense[T]) bool {
	if len(d.Data) != len(e.Data) {
		return false
	}
	for i := range d.Data {
		if d.Data[i] != e.Data[i] {
			return false
		}
	}
	return true
}
