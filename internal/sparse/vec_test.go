package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec[float64](10)
	if v.NNZ() != 0 || v.Capacity() != 10 || v.Density() != 0 {
		t.Fatal("empty vector accessors wrong")
	}
	if err := v.Set(3, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := v.Set(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := v.Set(7, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", v.NNZ())
	}
	if x, ok := v.Get(1); !ok || x != 2.5 {
		t.Errorf("Get(1) = %v,%v", x, ok)
	}
	if x, ok := v.Get(3); !ok || x != 1.5 {
		t.Errorf("Get(3) = %v,%v", x, ok)
	}
	if _, ok := v.Get(5); ok {
		t.Error("Get(5) should be absent")
	}
	// Overwrite existing.
	if err := v.Set(3, 9); err != nil {
		t.Fatal(err)
	}
	if x, _ := v.Get(3); x != 9 {
		t.Errorf("Get(3) after overwrite = %v", x)
	}
	if v.NNZ() != 3 {
		t.Errorf("overwrite changed nnz to %d", v.NNZ())
	}
	if got := v.Density(); got != 0.3 {
		t.Errorf("density = %v, want 0.3", got)
	}
}

func TestVecSetOutOfRange(t *testing.T) {
	v := NewVec[int](4)
	if err := v.Set(-1, 1); err == nil {
		t.Error("Set(-1) should fail")
	}
	if err := v.Set(4, 1); err == nil {
		t.Error("Set(4) should fail")
	}
}

func TestVecOf(t *testing.T) {
	v, err := VecOf(10, []int{5, 1, 8}, []int{50, 10, 80})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 5, 8}
	for k, i := range want {
		if v.Ind[k] != i {
			t.Fatalf("indices not sorted: %v", v.Ind)
		}
	}
	if x, _ := v.Get(8); x != 80 {
		t.Errorf("value did not follow its index in sort")
	}
	if _, err := VecOf(10, []int{1, 2}, []int{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := VecOf(10, []int{1, 1}, []int{1, 2}); err == nil {
		t.Error("duplicate indices should fail validation")
	}
	if _, err := VecOf(3, []int{5}, []int{1}); err == nil {
		t.Error("out-of-range index should fail validation")
	}
}

func TestVecCloneEqualClear(t *testing.T) {
	v, _ := VecOf(6, []int{0, 2, 4}, []float64{1, 2, 3})
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone not equal")
	}
	w.Val[1] = 99
	if v.Equal(w) {
		t.Fatal("mutating clone affected original comparison")
	}
	if v.Val[1] == 99 {
		t.Fatal("clone aliased original storage")
	}
	v.Clear()
	if v.NNZ() != 0 || v.Capacity() != 6 {
		t.Fatal("clear wrong")
	}
	// Different capacity compares unequal even with same entries.
	a, _ := VecOf(5, []int{1}, []int{1})
	b, _ := VecOf(6, []int{1}, []int{1})
	if a.Equal(b) {
		t.Error("different capacities should be unequal")
	}
}

func TestVecDenseRoundTrip(t *testing.T) {
	v, _ := VecOf(8, []int{1, 3, 6}, []int{10, 30, 60})
	d := v.ToDense(0)
	if len(d) != 8 || d[0] != 0 || d[1] != 10 || d[3] != 30 || d[6] != 60 {
		t.Fatalf("ToDense wrong: %v", d)
	}
	back := VecFromDense(d, 0)
	if !v.Equal(back) {
		t.Fatalf("round trip wrong: %v vs %v", v, back)
	}
	// Non-zero fill.
	df := v.ToDense(-1)
	if df[0] != -1 || df[1] != 10 {
		t.Fatalf("ToDense fill wrong: %v", df)
	}
	backf := VecFromDense(df, -1)
	if !v.Equal(backf) {
		t.Fatalf("round trip with fill wrong")
	}
}

func TestVecDenseRoundTripQuick(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		d := make([]int32, n)
		for i, r := range raw {
			d[i%n] = int32(r % 5) // small value range forces zeros
		}
		v := VecFromDense(d, 0)
		if err := v.Validate(); err != nil {
			return false
		}
		back := v.ToDense(0)
		for i := range d {
			if back[i] != d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseVec(t *testing.T) {
	d := NewDense[float64](5)
	if d.Len() != 5 {
		t.Fatal("len wrong")
	}
	d.Set(2, 7)
	if d.Get(2) != 7 || d.Get(1) != 0 {
		t.Fatal("get/set wrong")
	}
	e := d.Clone()
	if !d.Equal(e) {
		t.Fatal("clone not equal")
	}
	e.Set(0, 1)
	if d.Equal(e) {
		t.Fatal("clone aliases original")
	}
	f := NewDenseFill(5, 3.0)
	for i := 0; i < 5; i++ {
		if f.Get(i) != 3 {
			t.Fatal("fill wrong")
		}
	}
	if f.Equal(NewDense[float64](4)) {
		t.Fatal("length mismatch should be unequal")
	}
}

func TestVecValidateDetectsCorruption(t *testing.T) {
	v, _ := VecOf(10, []int{1, 5}, []int{1, 2})
	v.Ind[1] = 0 // out of order
	if err := v.Validate(); err == nil {
		t.Error("unsorted indices not detected")
	}
	v.Ind[1] = 99 // out of range
	if err := v.Validate(); err == nil {
		t.Error("out-of-range index not detected")
	}
	v.Ind = v.Ind[:1] // length mismatch
	if err := v.Validate(); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestVecString(t *testing.T) {
	v, _ := VecOf(5, []int{1, 3}, []int{10, 30})
	if s := v.String(); s == "" {
		t.Error("empty String()")
	}
	big := RandomVec[int](1000, 100, 1)
	if s := big.String(); s == "" {
		t.Error("empty String() for big vector")
	}
}

func TestVecGetRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 1000
	v := NewVec[int64](n)
	ref := map[int]int64{}
	for iter := 0; iter < 500; iter++ {
		i := rng.Intn(n)
		x := rng.Int63n(1000)
		if err := v.Set(i, x); err != nil {
			t.Fatal(err)
		}
		ref[i] = x
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != len(ref) {
		t.Fatalf("nnz = %d, want %d", v.NNZ(), len(ref))
	}
	for i := 0; i < n; i++ {
		got, ok := v.Get(i)
		want, wantOK := ref[i]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("Get(%d) = %d,%v; want %d,%v", i, got, ok, want, wantOK)
		}
	}
}
