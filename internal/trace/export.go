package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteJSON writes the tracer's completed span forest as indented JSON:
// {"spans": [...]} with every span carrying its children inline. This is the
// format behind gbbench -trace-out.
func WriteJSON(w io.Writer, t *Tracer) error {
	out := struct {
		Spans []*Span `json:"spans"`
	}{Spans: t.Roots()}
	if out.Spans == nil {
		out.Spans = []*Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// opAgg accumulates the Prometheus-style aggregate for one span name.
type opAgg struct {
	count    int64
	durNS    float64
	messages int64
	bytes    int64
	retries  int64
}

// WritePrometheus writes aggregated per-operation metrics in the Prometheus
// text exposition format: for every distinct span name (at any depth) a
// gb_op_total / gb_op_seconds_total (modeled) / gb_op_messages_total /
// gb_op_bytes_total / gb_op_retries_total sample labeled op="<name>".
// Output is sorted by op name so it is deterministic.
func WritePrometheus(w io.Writer, t *Tracer) error {
	aggs := map[string]*opAgg{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		a := aggs[sp.Name]
		if a == nil {
			a = &opAgg{}
			aggs[sp.Name] = a
		}
		a.count++
		a.durNS += sp.DurNS
		a.messages += sp.Messages
		a.bytes += sp.Bytes
		a.retries += sp.Retries
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range t.Roots() {
		walk(sp)
	}
	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)

	emit := func(metric, help, typ string, val func(*opAgg) string) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "%s{op=%q} %s\n", metric, n, val(aggs[n])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("gb_op_total", "Completed spans per operation.", "counter",
		func(a *opAgg) string { return fmt.Sprintf("%d", a.count) }); err != nil {
		return err
	}
	if err := emit("gb_op_seconds_total", "Modeled time per operation, seconds.", "counter",
		func(a *opAgg) string { return fmt.Sprintf("%g", a.durNS/1e9) }); err != nil {
		return err
	}
	if err := emit("gb_op_messages_total", "Messages charged per operation.", "counter",
		func(a *opAgg) string { return fmt.Sprintf("%d", a.messages) }); err != nil {
		return err
	}
	if err := emit("gb_op_bytes_total", "Bytes charged per operation.", "counter",
		func(a *opAgg) string { return fmt.Sprintf("%d", a.bytes) }); err != nil {
		return err
	}
	return emit("gb_op_retries_total", "Transfer retries per operation.", "counter",
		func(a *opAgg) string { return fmt.Sprintf("%d", a.retries) })
}

// Handler serves the tracer's current aggregates in the Prometheus text
// format (for gbbench -trace-http).
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WritePrometheus(w, t)
	})
}

// Tree renders the span forest as an indented deterministic text tree:
// structure, tags, message/byte/retry counts and phase names — but no times,
// so the output is stable across machine models and suitable for golden
// files.
func Tree(t *Tracer) string {
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Name)
		for _, tag := range sp.Tags {
			fmt.Fprintf(&b, " %s=%s", tag.Key, tag.Value)
		}
		fmt.Fprintf(&b, " msgs=%d bytes=%d", sp.Messages, sp.Bytes)
		if sp.Retries > 0 {
			fmt.Fprintf(&b, " retries=%d", sp.Retries)
		}
		if len(sp.Phases) > 0 {
			names := make([]string, len(sp.Phases))
			for i, p := range sp.Phases {
				names[i] = p.Name
			}
			fmt.Fprintf(&b, " phases=[%s]", strings.Join(names, ","))
		}
		b.WriteByte('\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	for _, sp := range t.Roots() {
		walk(sp, 0)
	}
	return b.String()
}
