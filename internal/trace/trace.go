// Package trace is the per-operation tracing and metrics seam. Every kernel,
// collective and algorithm opens a Span around its work; the span snapshots
// the simulator state (clock, phase list, traffic counters) on Begin and
// records the deltas on End. Because a span only *observes* sim state and
// never charges anything, tracing is free in modeled time: the same run with
// and without a tracer produces bit-identical clocks, phases and counters.
//
// The zero value of the seam is "off": every method is safe on a nil *Tracer
// or nil *Span and does nothing, so instrumented code needs no guards:
//
//	defer cfg.Trace.Begin("SpMSpVShm", trace.T("engine", "bucket")).End()
//
// Spans nest: Begin pushes onto a stack, End pops and attaches the span to
// its parent (or to the tracer's root list). The runtime executes coforall
// bodies sequentially (see internal/locale), so a single stack per tracer is
// sufficient and per-locale kernel calls inside a distributed operation show
// up as children of that operation's span.
package trace

import (
	"sync"

	"repro/internal/sim"
)

// Tag is one key=value annotation on a span (engine, grid shape, ...).
type Tag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// T is shorthand for constructing a Tag.
func T(k, v string) Tag { return Tag{Key: k, Value: v} }

// Span is one traced operation: its duration in modeled time, the
// bulk-synchronous phases recorded while it ran, the traffic it generated
// (inclusive of children), and per-locale message/byte/retry deltas.
type Span struct {
	Name string `json:"name"`
	Tags []Tag  `json:"tags,omitempty"`

	StartNS float64     `json:"start_ns"`
	DurNS   float64     `json:"dur_ns"`
	Phases  []sim.Phase `json:"phases,omitempty"`

	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	Retries  int64 `json:"retries,omitempty"`
	FineOps  int64 `json:"fine_ops,omitempty"`
	BulkOps  int64 `json:"bulk_ops,omitempty"`

	PerLocale []sim.LocaleCounters `json:"per_locale,omitempty"`
	Children  []*Span              `json:"children,omitempty"`

	tr       *Tracer
	startCnt sim.Counters
	startLoc []sim.LocaleCounters
	phaseIdx int
}

// Tracer collects a forest of spans bound to one simulator.
type Tracer struct {
	mu    sync.Mutex
	src   *sim.Sim
	stack []*Span
	roots []*Span
}

// New returns an empty tracer. Bind it to a simulator before use; an unbound
// tracer still records span names, tags and nesting, with zeroed metrics.
func New() *Tracer { return &Tracer{} }

// Bind attaches the tracer to the simulator whose clocks and counters spans
// snapshot. Rebinding is allowed (e.g. when a context is cloned); open spans
// keep the snapshots they took from the previous source.
func (t *Tracer) Bind(s *sim.Sim) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.src = s
	t.mu.Unlock()
}

// Begin opens a span; pair it with End (typically via defer). Safe on nil.
func (t *Tracer) Begin(name string, tags ...Tag) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name, Tags: tags, tr: t}
	t.mu.Lock()
	if t.src != nil {
		sp.StartNS = t.src.Elapsed()
		sp.startCnt = t.src.Traffic()
		sp.startLoc = t.src.LocaleTraffic()
		sp.phaseIdx = t.src.PhaseCount()
	}
	t.stack = append(t.stack, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span: computes duration, traffic deltas (inclusive of
// children) and the phases recorded while it was open, then attaches it to
// its parent span or the tracer's roots. Safe on nil.
func (sp *Span) End() {
	if sp == nil || sp.tr == nil {
		return
	}
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.src != nil {
		sp.DurNS = t.src.Elapsed() - sp.StartNS
		end := t.src.Traffic()
		sp.Messages = end.Messages - sp.startCnt.Messages
		sp.Bytes = end.Bytes - sp.startCnt.Bytes
		sp.Retries = end.Retries - sp.startCnt.Retries
		sp.FineOps = end.FineOps - sp.startCnt.FineOps
		sp.BulkOps = end.BulkOps - sp.startCnt.BulkOps
		sp.Phases = t.src.PhasesSince(sp.phaseIdx)
		endLoc := t.src.LocaleTraffic()
		if len(endLoc) == len(sp.startLoc) {
			sp.PerLocale = make([]sim.LocaleCounters, len(endLoc))
			for i := range endLoc {
				sp.PerLocale[i] = sim.LocaleCounters{
					Messages: endLoc[i].Messages - sp.startLoc[i].Messages,
					Bytes:    endLoc[i].Bytes - sp.startLoc[i].Bytes,
					Retries:  endLoc[i].Retries - sp.startLoc[i].Retries,
				}
			}
		}
	}
	// Pop sp from the stack. Spans end LIFO in practice; tolerate an
	// out-of-order End by searching.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == sp {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	sp.startLoc = nil
}

// Event records a zero-duration point event (an epoch commit, a health
// transition): a span that begins and ends at the same modeled instant, so
// it carries a timestamp and tags but no duration or traffic. Safe on nil.
func (t *Tracer) Event(name string, tags ...Tag) {
	t.Begin(name, tags...).End()
}

// Roots returns the completed top-level spans in completion order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Last returns the most recently completed root span with the given name,
// or nil if none exists.
func (t *Tracer) Last(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.roots) - 1; i >= 0; i-- {
		if t.roots[i].Name == name {
			return t.roots[i]
		}
	}
	return nil
}

// Reset discards all completed and in-flight spans (the simulator binding is
// kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stack = nil
	t.roots = nil
	t.mu.Unlock()
}
