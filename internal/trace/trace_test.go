package trace

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Bind(nil)
	sp := tr.Begin("anything", T("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.End() // must not panic
	if tr.Roots() != nil || tr.Last("anything") != nil {
		t.Error("nil tracer reported spans")
	}
	tr.Reset()
}

func TestSpanNestingAndDeltas(t *testing.T) {
	s := sim.New(machine.Edison(), 2)
	tr := New()
	tr.Bind(s)

	outer := tr.Begin("outer", T("engine", "bucket"))
	s.BeginPhase("work")
	s.Bulk(0, 128, false)
	inner := tr.Begin("inner")
	s.Bulk(1, 64, false)
	inner.End()
	s.EndPhase()
	outer.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "outer" {
		t.Fatalf("roots = %+v, want one outer span", roots)
	}
	o := roots[0]
	if len(o.Children) != 1 || o.Children[0].Name != "inner" {
		t.Fatalf("outer children = %+v, want [inner]", o.Children)
	}
	if o.Messages != 2 {
		t.Errorf("outer messages = %d, want 2 (inclusive of child)", o.Messages)
	}
	if o.Children[0].Messages != 1 {
		t.Errorf("inner messages = %d, want 1", o.Children[0].Messages)
	}
	if len(o.Phases) != 1 || o.Phases[0].Name != "work" {
		t.Errorf("outer phases = %+v, want [work]", o.Phases)
	}
	if len(o.PerLocale) != 2 || o.PerLocale[0].Messages != 1 || o.PerLocale[1].Messages != 1 {
		t.Errorf("per-locale deltas = %+v, want one message each", o.PerLocale)
	}
	if o.DurNS <= 0 {
		t.Error("outer span has no modeled duration")
	}
	if tr.Last("outer") != o || tr.Last("missing") != nil {
		t.Error("Last lookup wrong")
	}
}

func TestTracingIsObserveOnly(t *testing.T) {
	run := func(tr *Tracer) float64 {
		s := sim.New(machine.Edison(), 4)
		tr.Bind(s)
		sp := tr.Begin("op")
		s.BeginPhase("p")
		for l := 0; l < 4; l++ {
			s.Bulk(l, 256, false)
		}
		s.EndPhase()
		s.Barrier()
		sp.End()
		return s.Elapsed()
	}
	if plain, traced := run(nil), run(New()); plain != traced {
		t.Errorf("modeled time changed under tracing: %v vs %v", plain, traced)
	}
}

func TestExporters(t *testing.T) {
	s := sim.New(machine.Edison(), 2)
	tr := New()
	tr.Bind(s)
	sp := tr.Begin("MxM", T("engine", "bucket"))
	s.Bulk(0, 100, false)
	sp.End()
	tr.Begin("Apply2").End()

	var js bytes.Buffer
	if err := WriteJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spans"`, `"MxM"`, `"Apply2"`, `"engine"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON export misses %s:\n%s", want, js.String())
		}
	}

	var prom bytes.Buffer
	if err := WritePrometheus(&prom, tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gb_op_total{op="Apply2"} 1`,
		`gb_op_total{op="MxM"} 1`,
		`gb_op_messages_total{op="MxM"} 1`,
		"# TYPE gb_op_seconds_total counter",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export misses %q:\n%s", want, prom.String())
		}
	}

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "gb_op_total") {
		t.Errorf("handler response %d: %s", rec.Code, rec.Body.String())
	}

	tree := Tree(tr)
	if !strings.Contains(tree, "MxM engine=bucket") || !strings.Contains(tree, "Apply2") {
		t.Errorf("tree export wrong:\n%s", tree)
	}

	// Empty tracer still yields valid JSON with an empty span list.
	js.Reset()
	if err := WriteJSON(&js, New()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"spans": []`) {
		t.Errorf("empty tracer JSON = %s", js.String())
	}
}

func TestEventIsZeroDurationSpan(t *testing.T) {
	s := sim.New(machine.Edison(), 2)
	tr := New()
	tr.Bind(s)
	tr.Event("EpochCommit", T("epoch", "7"))
	sp := tr.Last("EpochCommit")
	if sp == nil {
		t.Fatal("event did not record a span")
	}
	if sp.DurNS != 0 || sp.Messages != 0 {
		t.Errorf("event span dur=%v msgs=%d, want a zero-cost marker", sp.DurNS, sp.Messages)
	}
	if len(sp.Tags) != 1 || sp.Tags[0].Key != "epoch" || sp.Tags[0].Value != "7" {
		t.Errorf("event tags = %+v, want epoch=7", sp.Tags)
	}
	var nilTr *Tracer
	nilTr.Event("anything") // must not panic
}
