// Package workpool provides the persistent worker pool behind every real
// (non-modeled) parallel loop in the library. The paper's lesson — hidden
// per-call overheads are what separate the idiomatic kernels from the
// hand-optimized ones — shows up in Go as per-call goroutine spawning: the
// previous ParFor launched and tore down a goroutine per chunk on every
// kernel invocation. This pool spawns its workers once, keeps them parked on
// a task channel, and feeds them chunked jobs whose descriptors are recycled
// through a sync.Pool, so a steady-state parallel loop costs two atomic
// operations and a channel handoff instead of goroutine creation.
//
// Scheduling model: a ParFor call splits [0, n) into exactly
// min(workers, n) contiguous chunks (never an empty chunk, never a chunk for
// an empty range), publishes the job to idle workers with non-blocking ticket
// sends, and then participates itself, claiming chunks through an atomic
// cursor until none remain. Because the submitter always participates and
// never blocks on a send, a loop completes even when every pool worker is
// busy — including when a loop body itself calls back into the pool — so
// nested use cannot deadlock.
package workpool

import (
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutines one pool will ever park; requests beyond
// it still complete (the submitter and however many workers exist chew
// through the chunks), they just get less parallelism.
const maxWorkers = 256

// Pool is a persistent set of worker goroutines fed by a chunked work queue.
// The zero value is not usable; create pools with New. All methods are safe
// for concurrent use — many kernels may submit loops to one pool at once —
// and safe on a nil *Pool, which falls back to the process-wide Shared pool.
type Pool struct {
	mu      sync.Mutex
	tasks   chan *job
	spawned int
}

// job is one ParFor invocation: body over [0, n) in `chunks` contiguous
// chunks claimed through the atomic cursor. Descriptors are recycled through
// jobPool; a descriptor is only recycled once every issued ticket has been
// consumed (tickets == 0), so a worker can never observe a descriptor being
// reconfigured.
type job struct {
	body    func(c, lo, hi int)
	n       int
	chunks  int
	next    atomic.Int64
	tickets atomic.Int64
	wg      sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// New returns an empty pool; workers are spawned lazily, growing to the
// largest concurrency any call requests (capped at maxWorkers) and parked
// between calls.
func New() *Pool {
	return &Pool{tasks: make(chan *job, maxWorkers)}
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide fallback pool, used by callers that have no
// runtime-owned pool in hand (legacy entry points, tests).
func Shared() *Pool {
	sharedOnce.Do(func() { shared = New() })
	return shared
}

// ensure grows the worker set to at least k parked goroutines.
func (p *Pool) ensure(k int) {
	if k > maxWorkers {
		k = maxWorkers
	}
	p.mu.Lock()
	for p.spawned < k {
		go worker(p.tasks)
		p.spawned++
	}
	p.mu.Unlock()
}

func worker(tasks <-chan *job) {
	for j := range tasks {
		j.run()
		// Decrement only after run returns: a ticket still counted means the
		// worker may still be touching the descriptor, so the submitter will
		// abandon rather than recycle it.
		j.tickets.Add(-1)
	}
}

// run claims chunks until none remain. Chunk c covers
// [c*n/chunks, (c+1)*n/chunks) — the same contiguous partition the previous
// spawn-per-call ParFor used, so worker-indexed kernels (bucket scatter,
// per-worker private SPAs) keep their deterministic ownership.
func (j *job) run() {
	n, chunks, body := j.n, j.chunks, j.body
	for {
		c := int(j.next.Add(1)) - 1
		if c >= chunks {
			return
		}
		body(c, c*n/chunks, (c+1)*n/chunks)
		j.wg.Done()
	}
}

// ParFor executes body over [0, n) in contiguous chunks on up to `workers`
// concurrent executors and blocks until all chunks complete. n <= 0 returns
// immediately without touching the queue; workers is clamped to n so no
// empty chunk is ever created or enqueued. With workers <= 1 the body runs
// inline on the caller's goroutine.
func (p *Pool) ParFor(workers, n int, body func(lo, hi int)) {
	p.ParForChunk(workers, n, func(_, lo, hi int) { body(lo, hi) })
}

// ParForChunk is ParFor with the chunk index exposed: body(c, lo, hi) runs
// for each chunk c in [0, min(workers, n)), where chunk c owns the contiguous
// range [c*n/chunks, (c+1)*n/chunks). Kernels use c as a stable worker id for
// thread-private scratch (bucket runs, private SPAs); the partition is a pure
// function of (workers, n), so ownership is deterministic.
func (p *Pool) ParForChunk(workers, n int, body func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	if p == nil {
		p = Shared()
	}
	p.ensure(workers - 1)

	j := jobPool.Get().(*job)
	j.body, j.n, j.chunks = body, n, workers
	j.next.Store(0)
	j.wg.Add(workers)

	// Offer a ticket per helper chunk; the descriptor is fully configured
	// before the first send, so the channel handoff publishes it. Sends never
	// block: a full queue just means the submitter keeps more chunks.
	j.tickets.Store(int64(workers - 1))
	for t := 0; t < workers-1; t++ {
		select {
		case p.tasks <- j:
		default:
			j.tickets.Add(-1)
		}
	}

	j.run()
	j.wg.Wait()
	// Recycle only when no worker can still hold the descriptor. A stale
	// ticket (worker not yet scheduled) abandons the descriptor to the GC:
	// the late worker finds the cursor exhausted and moves on harmlessly.
	if j.tickets.Load() == 0 {
		j.body = nil
		jobPool.Put(j)
	}
}

// ParFor runs body over [0, n) on the process-wide Shared pool; it is the
// drop-in replacement for the old spawn-per-call free function.
func ParFor(workers, n int, body func(lo, hi int)) {
	Shared().ParFor(workers, n, body)
}
