package workpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParForCoversRange verifies every index in [0, n) is visited exactly
// once across a spread of (workers, n) shapes, including n < workers.
func TestParForCoversRange(t *testing.T) {
	p := New()
	for _, workers := range []int{1, 2, 3, 7, 16, 64} {
		for _, n := range []int{0, 1, 2, 3, 5, 16, 97, 1000} {
			visits := make([]int32, n)
			p.ParFor(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestParForSmallNNeverSpawnsEmptyChunks is the regression test for the
// n < workers degeneration: the chunk count must clamp to n, so no body call
// ever sees an empty range and no work is enqueued for n == 0.
func TestParForSmallNNeverSpawnsEmptyChunks(t *testing.T) {
	p := New()
	for n := 0; n <= 8; n++ {
		var calls atomic.Int64
		p.ParForChunk(32, n, func(c, lo, hi int) {
			calls.Add(1)
			if hi-lo < 1 {
				t.Errorf("n=%d: chunk %d is empty [%d,%d)", n, c, lo, hi)
			}
			if c < 0 || c >= n {
				t.Errorf("n=%d: chunk index %d outside [0,%d)", n, c, n)
			}
		})
		if got := calls.Load(); got != int64(n) {
			t.Fatalf("n=%d with 32 workers: %d chunks, want exactly %d (one per index)", n, got, n)
		}
	}
	// n == 0 must not touch the queue at all.
	before := len(p.tasks)
	p.ParFor(8, 0, func(lo, hi int) { t.Error("body called for n == 0") })
	if len(p.tasks) != before {
		t.Error("n == 0 enqueued work")
	}
}

// TestParForChunkPartitionIsDeterministic pins the contiguous partition
// formula kernels rely on for worker-private scratch ownership.
func TestParForChunkPartitionIsDeterministic(t *testing.T) {
	p := New()
	const workers, n = 4, 10
	var mu sync.Mutex
	got := map[int][2]int{}
	p.ParForChunk(workers, n, func(c, lo, hi int) {
		mu.Lock()
		got[c] = [2]int{lo, hi}
		mu.Unlock()
	})
	for c := 0; c < workers; c++ {
		want := [2]int{c * n / workers, (c + 1) * n / workers}
		if got[c] != want {
			t.Errorf("chunk %d = %v, want %v", c, got[c], want)
		}
	}
}

// TestNestedParFor verifies a loop body may itself submit loops to the same
// pool without deadlock (the submitter always participates).
func TestNestedParFor(t *testing.T) {
	p := New()
	var total atomic.Int64
	p.ParFor(4, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParFor(4, 16, func(lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested total = %d, want %d", got, 8*16)
	}
}

// TestConcurrentSubmitters hammers one pool from many goroutines, the shape
// of concurrent kernel calls sharing one Runtime.
func TestConcurrentSubmitters(t *testing.T) {
	p := New()
	const submitters = 8
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				var sum atomic.Int64
				p.ParFor(4, 1000, func(lo, hi int) {
					local := int64(0)
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					sum.Add(local)
				})
				if got := sum.Load(); got != 999*1000/2 {
					t.Errorf("sum = %d, want %d", got, 999*1000/2)
				}
			}
		}()
	}
	wg.Wait()
}

// TestWorkersArePersistent verifies the pool does not spawn per call: after a
// warm-up loop, repeated calls must not grow the worker set.
func TestWorkersArePersistent(t *testing.T) {
	p := New()
	p.ParFor(8, 64, func(lo, hi int) {})
	p.mu.Lock()
	after := p.spawned
	p.mu.Unlock()
	for i := 0; i < 100; i++ {
		p.ParFor(8, 64, func(lo, hi int) {})
	}
	p.mu.Lock()
	final := p.spawned
	p.mu.Unlock()
	if final != after {
		t.Fatalf("worker set grew from %d to %d across identical calls", after, final)
	}
	if after > 7 {
		t.Fatalf("spawned %d workers for 8-way loops (submitter participates, want <= 7)", after)
	}
}

// TestNilPoolFallsBack verifies a nil *Pool routes to the Shared pool rather
// than panicking.
func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	var sum atomic.Int64
	p.ParFor(4, 100, func(lo, hi int) { sum.Add(int64(hi - lo)) })
	if sum.Load() != 100 {
		t.Fatalf("nil-pool ParFor covered %d of 100", sum.Load())
	}
}
