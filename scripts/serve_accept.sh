#!/usr/bin/env bash
# serve-accept: end-to-end acceptance of the gbserve query service.
#
# Boots gbserve on a generated R-MAT graph, drives a concurrent query smoke
# across mixed tenants — fault-free queries, one with an impossible modeled
# deadline (must 504), one from a client that hangs up (server keeps running),
# one chaos-crashed (must still answer, bitwise-stable epoch headers), a
# mutate+flush epoch advance — then sends SIGTERM and asserts a clean drain.
set -euo pipefail

ADDR="127.0.0.1:${SERVE_PORT:-18765}"
LOG="$(mktemp)"
BIN="$(mktemp -d)/gbserve"
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG" /tmp/serve_accept_body.$$' EXIT

go build -o "$BIN" ./cmd/gbserve

"$BIN" -addr "$ADDR" -graph web=rmat:10:8:1 -batch-window 5ms -policy redistribute >"$LOG" 2>&1 &
PID=$!

# Wait for readiness.
for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "gbserve died on boot:"; cat "$LOG"; exit 1; fi
  sleep 0.2
done
curl -fsS "http://$ADDR/readyz" >/dev/null || { echo "gbserve never became ready"; cat "$LOG"; exit 1; }

q() { # tenant, body -> prints http status code
  curl -s -o /tmp/serve_accept_body.$$ -w '%{http_code}' \
    -X POST "http://$ADDR/query" -H "X-Tenant: $1" -d "$2"
}

fail() { echo "serve-accept: $*"; cat "$LOG"; exit 1; }

# Concurrent fault-free smoke across mixed tenants and every op; the three
# BFS queries land inside one batch window and should coalesce.
pids=()
for t in alice bob carol; do
  for op in bfs sssp cc; do
    ( s=$(q "$t" "{\"graph\":\"web\",\"op\":\"$op\",\"source\":3}"); [ "$s" = 200 ] ) &
    pids+=($!)
  done
done
( s=$(q alice '{"graph":"web","op":"pagerank"}'); [ "$s" = 200 ] ) &
pids+=($!)
( s=$(q bob '{"graph":"web","op":"triangles"}'); [ "$s" = 200 ] ) &
pids+=($!)
for p in "${pids[@]}"; do wait "$p" || fail "a concurrent query failed"; done

# One query with an impossible modeled budget: typed 504, never a hang.
s=$(q dora '{"graph":"web","op":"pagerank","budget_ms":0.000001}')
[ "$s" = 504 ] || fail "deadline query returned $s, want 504"

# One client hangs up immediately; the server must survive it.
curl -s -m 0.05 -X POST "http://$ADDR/query" -H 'X-Tenant: quitter' \
  -d '{"graph":"web","op":"pagerank","max_iter":100000,"tol":1e-30}' >/dev/null 2>&1 || true
kill -0 "$PID" || fail "server died on a canceled client"

# One chaos-crashed query: probe the fault-step window, plant a crash inside
# it, and the answer must match the fault-free reference exactly.
ref=$(curl -s -X POST "http://$ADDR/query" -d '{"graph":"web","op":"bfs","source":3}')
steps=$(curl -s -X POST "http://$ADDR/query" \
  -d '{"graph":"web","op":"bfs","source":3,"chaos_seed":2}' \
  | sed -n 's/.*"fault_steps":\([0-9]*\).*/\1/p')
[ -n "$steps" ] && [ "$steps" -ge 4 ] || fail "chaos probe drew no fault steps"
crashed=$(curl -s -X POST "http://$ADDR/query" \
  -d "{\"graph\":\"web\",\"op\":\"bfs\",\"source\":3,\"chaos_seed\":2,\"crash_locale\":2,\"crash_step\":$((steps / 2))}")
echo "$crashed" | grep -q '"recoveries":' || fail "chaos crash never fired: $crashed"
ref_levels=$(echo "$ref" | sed -n 's/.*"levels":\(\[[^]]*\]\).*/\1/p')
crash_levels=$(echo "$crashed" | sed -n 's/.*"levels":\(\[[^]]*\]\).*/\1/p')
[ "$ref_levels" = "$crash_levels" ] || fail "chaos-recovered BFS diverged from fault-free"

# Mutate + flush advances the served epoch.
curl -fsS -X POST "http://$ADDR/graphs/web/mutate" \
  -d '{"rows":[0],"cols":[9],"vals":[1.0]}' >/dev/null || fail "mutate failed"
curl -fsS -X POST "http://$ADDR/graphs/web/flush" | grep -q '"epoch":1' || fail "flush did not commit epoch 1"
curl -s -D - -o /dev/null -X POST "http://$ADDR/query" -d '{"graph":"web","op":"cc"}' \
  | grep -qi 'X-GB-Epoch: 1' || fail "query not served from epoch 1"

# Metrics carry the per-tenant outcomes.
curl -fsS "http://$ADDR/metrics" | grep -q 'gbserve_queries_total{tenant="alice"' \
  || fail "per-tenant metrics missing"
curl -fsS "http://$ADDR/metrics" | grep -q 'outcome="deadline"' \
  || fail "deadline outcome missing from metrics"

# SIGTERM: readiness drops, in-flight work finishes, exit is clean.
kill -TERM "$PID"
for i in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$PID" 2>/dev/null && fail "server ignored SIGTERM"
wait "$PID" 2>/dev/null || true
grep -q 'drained clean' "$LOG" || fail "no clean drain in log"

echo "serve-accept: OK"
